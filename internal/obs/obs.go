// Package obs is the operational observability layer: wall-clock span
// tracing, campaign progress and ETA, worker-pool gauges, a heartbeat
// journal, and an embedded HTTP server exposing Prometheus metrics,
// health, progress, and pprof.
//
// It is the deliberate complement of internal/telemetry, and the two must
// never be confused:
//
//   - telemetry records what the SIMULATED machine did, stamped in simulated
//     time, on a channel whose bytes are part of the experiment's output —
//     byte-identical across repetitions, compared by equivalence tests.
//   - obs records what THIS PROCESS is doing, stamped in wall-clock time, on
//     channels (a span JSONL file, stderr, HTTP responses) that are never
//     part of an experiment's output. Two runs of the same campaign produce
//     different obs streams and identical telemetry streams.
//
// Keeping the channels separate is what lets a fully observed campaign
// still satisfy the repository's bitwise-equivalence discipline: enabling
// -http, span tracing, and the progress display changes no byte of -out or
// -telemetry (tested in cmd/experiments).
//
// Like telemetry, obs observes without participating, and disabled obs is
// free: every entry point is nil-safe, so code paths instrumented with a
// span or a unit callback cost a nil check when observability is off.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"untangle/internal/checkpoint"
)

// Span is one timed region of campaign work, part of a hierarchy:
// campaign -> phase -> unit (benchmark or mix) -> engine pass. Spans are
// wall-clock by nature; they answer "where did the hours go", never "what
// did the simulation compute".
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	start  time.Time
	// Outcome marks a unit that skipped (some of) its work: UnitResumed for
	// a checkpoint-journal replay, UnitReplayed for a front-end trace-cache
	// replay, UnitGenerated (empty, the default) for a unit that actually
	// ran. Set it before End.
	Outcome string
}

// Unit outcomes, mirrored from the experiments package (the two packages
// must not import each other; the observer contract is an unnamed string).
const (
	UnitGenerated = ""
	UnitResumed   = "resumed"
	UnitReplayed  = "replayed"
	UnitDead      = "dead"
)

// spanRecord is the JSONL wire form. Every span emits two lines — a start
// record when it opens and an end record when it closes — so a live tail of
// the file shows in-flight structure, and a crash leaves the open spans
// identifiable (starts without ends).
type spanRecord struct {
	Ev     string `json:"ev"` // "start" | "end"
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Phase  string `json:"phase,omitempty"`
	Name   string `json:"name,omitempty"`
	AtNs   int64  `json:"at_unix_ns"`
	DurNs  int64  `json:"dur_ns,omitempty"`
	// Outcome distinguishes replayed work in the trace: "resumed"
	// (checkpoint journal) or "replayed" (front-end trace cache); omitted
	// for units that actually ran.
	Outcome string `json:"outcome,omitempty"`
	Err     string `json:"err,omitempty"`
}

// Tracer appends span records as JSONL to a writer. A nil *Tracer is a
// valid disabled tracer: Start returns a nil span, End on a nil span is a
// no-op, and nothing is ever written. All methods are safe for concurrent
// use; each record is marshaled fully and written under one lock
// acquisition, so concurrent spans never tear a line.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	err    error
	nextID atomic.Uint64
	now    func() time.Time // test seam; time.Now in production
}

// NewTracer builds a tracer over w. The caller owns w's lifecycle; call
// Flush before closing it.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w), now: time.Now}
}

// Start opens a span under parent (nil for a root) and emits its start
// record. phase groups spans of the same kind ("sensitivity", "mix",
// "sensitivity/pass"); name identifies the unit ("mcf_0", "mix/3").
func (t *Tracer) Start(parent *Span, phase, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.nextID.Add(1), start: t.now()}
	if parent != nil {
		s.parent = parent.id
	}
	t.emit(spanRecord{
		Ev:     "start",
		ID:     s.id,
		Parent: s.parent,
		Phase:  phase,
		Name:   name,
		AtNs:   s.start.UnixNano(),
	})
	return s
}

// End closes the span, recording its duration, outcome, and error (if
// any). End on a nil span is a no-op; End is not idempotent — call it once.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	now := s.t.now()
	rec := spanRecord{
		Ev:      "end",
		ID:      s.id,
		AtNs:    now.UnixNano(),
		DurNs:   now.Sub(s.start).Nanoseconds(),
		Outcome: s.Outcome,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.t.emit(rec)
}

func (t *Tracer) emit(rec spanRecord) {
	line, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(line); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// Flush pushes buffered records to the underlying writer and returns the
// first error the tracer encountered. Nil-safe.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// HeartbeatPath returns the conventional heartbeat location for a
// checkpoint journal: a sidecar next to the journal file, so the two travel
// together and an operator inspecting a run directory finds both.
func HeartbeatPath(j *checkpoint.Journal) string {
	if j == nil {
		return ""
	}
	return j.Path() + ".heartbeat"
}
