package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for deterministic rate and
// duration assertions.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func decodeSpans(t *testing.T, buf *bytes.Buffer) []spanRecord {
	t.Helper()
	var out []spanRecord
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var rec spanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

func TestTracerEmitsStartAndEndRecords(t *testing.T) {
	var buf bytes.Buffer
	clk := newFakeClock()
	tr := NewTracer(&buf)
	tr.now = clk.now

	root := tr.Start(nil, "campaign", "experiments")
	clk.advance(time.Second)
	unit := tr.Start(root, "sensitivity", "mcf_0")
	clk.advance(2 * time.Second)
	unit.Outcome = UnitReplayed
	unit.End(errors.New("boom"))
	clk.advance(time.Second)
	root.End(nil)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	recs := decodeSpans(t, &buf)
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (2 starts + 2 ends)", len(recs))
	}
	if recs[0].Ev != "start" || recs[0].Phase != "campaign" || recs[0].Parent != 0 {
		t.Errorf("root start record wrong: %+v", recs[0])
	}
	if recs[1].Ev != "start" || recs[1].Parent != recs[0].ID || recs[1].Name != "mcf_0" {
		t.Errorf("unit start record wrong: %+v", recs[1])
	}
	if recs[2].Ev != "end" || recs[2].ID != recs[1].ID || recs[2].DurNs != int64(2*time.Second) ||
		recs[2].Outcome != UnitReplayed || recs[2].Err != "boom" {
		t.Errorf("unit end record wrong: %+v", recs[2])
	}
	if recs[3].Ev != "end" || recs[3].ID != recs[0].ID || recs[3].DurNs != int64(4*time.Second) {
		t.Errorf("root end record wrong: %+v", recs[3])
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "p", "n")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.End(nil) // must not panic
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestProgressRateAndETA(t *testing.T) {
	clk := newFakeClock()
	p := NewProgress()
	p.now = clk.now
	p.start = clk.now()

	ph := p.Phase("sens", 10)
	ph.now = clk.now
	ph.started = clk.now()

	// Two journal replays and one trace-cache replay land instantly: done
	// advances, rate stays 0.
	ph.UnitDone(UnitResumed)
	ph.UnitDone(UnitResumed)
	ph.UnitDone(UnitReplayed)
	s := p.Snapshot()
	if s.Done != 3 || s.Total != 10 {
		t.Fatalf("done/total = %d/%d, want 3/10", s.Done, s.Total)
	}
	if s.ETASeconds != -1 {
		t.Fatalf("ETA before any real completion = %v, want -1 (unknown)", s.ETASeconds)
	}

	// Real completions at one per 2s: rate converges to 0.5/s.
	for i := 0; i < 4; i++ {
		clk.advance(2 * time.Second)
		ph.UnitDone(UnitGenerated)
	}
	s = p.Snapshot()
	if s.Done != 7 {
		t.Fatalf("done = %d, want 7", s.Done)
	}
	if s.Phases[0].Resumed != 2 {
		t.Fatalf("resumed = %d, want 2", s.Phases[0].Resumed)
	}
	if s.Phases[0].Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", s.Phases[0].Replayed)
	}
	if r := s.Phases[0].RatePerSec; r < 0.4 || r > 0.6 {
		t.Fatalf("rate = %v, want ~0.5", r)
	}
	// 3 units remain at ~0.5/s -> ~6s ETA.
	if s.ETASeconds < 4 || s.ETASeconds > 9 {
		t.Fatalf("ETA = %v, want ~6s", s.ETASeconds)
	}

	// Finish the phase: ETA collapses to 0.
	for i := 0; i < 3; i++ {
		clk.advance(2 * time.Second)
		ph.UnitDone(UnitGenerated)
	}
	s = p.Snapshot()
	if s.ETASeconds != 0 {
		t.Fatalf("ETA of a finished campaign = %v, want 0", s.ETASeconds)
	}
}

func TestProgressPriorElapsedIsContinuous(t *testing.T) {
	clk := newFakeClock()
	p := NewProgress()
	p.now = clk.now
	p.start = clk.now()
	p.SetPrior(90 * time.Second)
	clk.advance(10 * time.Second)
	s := p.Snapshot()
	if s.ElapsedSeconds != 10 {
		t.Errorf("session elapsed = %v, want 10", s.ElapsedSeconds)
	}
	if s.TotalElapsedSeconds != 100 {
		t.Errorf("total elapsed = %v, want 100", s.TotalElapsedSeconds)
	}
}

func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	p.SetPrior(time.Second)
	ph := p.Phase("x", 5)
	if ph != nil {
		t.Fatal("nil progress returned a phase")
	}
	ph.UnitDone(UnitGenerated) // must not panic
	s := p.Snapshot()
	if s.Phases == nil || len(s.Phases) != 0 || s.ETASeconds != -1 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if got := s.String(); !strings.Contains(got, "working") {
		t.Errorf("nil snapshot string = %q", got)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{
		TotalElapsedSeconds: 34,
		ETASeconds:          64,
		Phases: []PhaseSnapshot{
			{Name: "sensitivity", Done: 12, Total: 36},
			{Name: "mix", Done: 0, Total: 16},
		},
	}
	got := s.String()
	for _, want := range []string{"sensitivity 12/36", "mix 0/16", "34s elapsed", "eta 1m4s"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	s.ETASeconds = -1
	if got := s.String(); !strings.Contains(got, "eta ?") {
		t.Errorf("unknown ETA rendered as %q, want 'eta ?'", got)
	}
}

// Dead-lettered units count toward done (the campaign will not rerun them)
// but never feed the rate estimate, exactly like resumed/replayed units.
func TestProgressDeadUnitsCountedNotRated(t *testing.T) {
	p := NewProgress()
	ph := p.Phase("mix", 4)
	ph.UnitDone(UnitDead)
	ph.UnitDone(UnitDead)
	s := p.Snapshot()
	if len(s.Phases) != 1 {
		t.Fatalf("phases = %+v", s.Phases)
	}
	got := s.Phases[0]
	if got.Done != 2 || got.Dead != 2 || got.RatePerSec != 0 {
		t.Fatalf("snapshot = %+v", got)
	}
	if got.ETASeconds != -1 {
		t.Errorf("ETA = %v, want unknown (no rated completions)", got.ETASeconds)
	}
	// JSON round trip exposes the dead count.
	b, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"dead":2`) {
		t.Errorf("json = %s", b)
	}
}
