package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"untangle/internal/telemetry"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// The server smoke test the issue asks for: bind an ephemeral port, scrape
// /metrics and /progress while a campaign is mid-flight (units partially
// done), and assert both documents are well-formed and reflect the state.
func TestServerSmoke(t *testing.T) {
	reg := telemetry.NewRegistry()
	progress := NewProgress()
	c := NewCampaign("smoke", nil, progress, reg)
	defer c.End(nil)
	c.Phase("sensitivity", 4)
	c.Unit("sensitivity", "a")(UnitGenerated, nil)
	c.Unit("sensitivity", "b")(UnitGenerated, nil)
	reg.Counter("obs.scrapes").Add(7)

	srv, err := StartServer("127.0.0.1:0", progress,
		NamedRegistry{Namespace: "untangle", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	base := "http://" + srv.Addr()

	code, body := scrape(t, base+"/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = scrape(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE untangle_obs_scrapes counter",
		"untangle_obs_scrapes 7",
		"untangle_obs_pool_active_workers",
		"# TYPE untangle_obs_sensitivity_unit_seconds histogram",
		`untangle_obs_sensitivity_unit_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Every non-comment line must be "name value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	code, body = scrape(t, base+"/progress")
	if code != 200 {
		t.Fatalf("/progress = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if snap.Done != 2 || snap.Total != 4 {
		t.Errorf("/progress done/total = %d/%d, want 2/4", snap.Done, snap.Total)
	}
	if len(snap.Phases) != 1 || snap.Phases[0].Name != "sensitivity" {
		t.Errorf("/progress phases = %+v", snap.Phases)
	}

	code, _ = scrape(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServerEmphemeralPortsAreIndependent(t *testing.T) {
	p := NewProgress()
	a, err := StartServer("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown()
	b, err := StartServer("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()
	if a.Addr() == b.Addr() {
		t.Fatalf("two ephemeral servers share %s", a.Addr())
	}
}

func TestServerShutdownNilSafe(t *testing.T) {
	var s *Server
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Fatal("nil server has an address")
	}
}

func TestServerBadAddr(t *testing.T) {
	if _, err := StartServer("definitely:not:an:addr", nil); err == nil {
		t.Fatal("expected error for bad address")
	}
}

// Reporter writes the live line and heartbeats; exercised here rather than
// in a cmd test because the ticker cadence is controllable.
func ExampleSnapshot_String() {
	s := Snapshot{
		TotalElapsedSeconds: 34,
		ETASeconds:          64,
		Phases: []PhaseSnapshot{
			{Name: "sensitivity", Done: 12, Total: 36},
			{Name: "mix", Done: 0, Total: 16},
		},
	}
	fmt.Println(s.String())
	// Output: sensitivity 12/36 · mix 0/16 · 34s elapsed · eta 1m4s
}

// Extra endpoints mount alongside the built-ins on the same listener — the
// campaign service's job API rides the observability port.
func TestServerExtraEndpoints(t *testing.T) {
	extra := []Endpoint{{
		Pattern: "/queue",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"depth":3}`)
		}),
	}}
	s, err := StartServerEndpoints("127.0.0.1:0", NewProgress(), extra)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	code, body := scrape(t, "http://"+s.Addr()+"/queue")
	if code != http.StatusOK || !strings.Contains(body, `"depth":3`) {
		t.Fatalf("GET /queue = %d %q", code, body)
	}
	// Built-ins still present.
	if code, _ := scrape(t, "http://"+s.Addr()+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := scrape(t, "http://"+s.Addr()+"/progress"); code != http.StatusOK {
		t.Fatalf("progress = %d", code)
	}
}
