package workload

import (
	"untangle/internal/cache"
	"untangle/internal/isa"
)

// This file models the three leakage demonstration snippets of Figure 1.
// Each returns an isa.Stream whose behaviour depends on a secret, in exactly
// the way the corresponding snippet leaks:
//
//   - Figure 1a: the secret gates a 4MB array traversal via control flow.
//   - Figure 1b: the secret scales the traversal stride via data flow, so a
//     different number of distinct cache lines is touched.
//   - Figure 1c: the traversal always happens, but the secret adds a delay
//     before it, so only the *timing* of the resulting expansion changes.
//
// When annotated is true, the secret-dependent instructions carry the
// Section 5.2 annotations, which is what lets Untangle exclude them from the
// utilization metric and the progress count. Figure 1c's delay is modelled
// as a spin loop, the canonical timing-dependent dynamic instruction
// sequence of Section 6.1, and is annotated with FlagTimingDep.

const demoArrayBytes = 4 << 20 // the snippets traverse a 4MB array

// traversal emits one pass over n bytes with the given stride (in lines),
// flagged with flags, followed by publicTail public filler instructions.
type traversal struct {
	flags     isa.Flags
	spinFlags isa.Flags
	lines     uint64
	stride    uint64
	pos       uint64
	done      bool
	spin      uint64 // leading non-mem spin instructions (Figure 1c delay)
	filler    *Generator
}

func (t *traversal) Fill(buf []isa.Op) int {
	i := 0
	for ; i < len(buf); i++ {
		switch {
		case t.spin > 0:
			n := t.spin
			if n > 1<<20 {
				n = 1 << 20
			}
			buf[i] = isa.Op{NonMem: uint32(n), Flags: t.spinFlags}
			t.spin -= n
		case !t.done:
			buf[i] = isa.Op{
				Addr:  coldBase + (t.pos%t.lines)*t.stride*cache.LineBytes,
				Flags: isa.FlagMem | t.flags,
			}
			t.pos++
			if t.pos >= t.lines {
				t.done = true
			}
		default:
			// Public tail: steady filler traffic from a small benchmark so
			// the schemes keep assessing after the interesting phase.
			return i + t.filler.Fill(buf[i:])
		}
	}
	return i
}

func demoFiller() *Generator {
	return MustNewGenerator(Params{
		Name: "demo-filler", Seed: 999,
		MemFraction: 0.3, HotBytes: 16 * KB, HotProb: 0.9,
		ColdBytes: 64 * KB, WriteFrac: 0.2, MLP: 4, BaseCPI: 0.4,
	})
}

// Figure1a returns the snippet of Figure 1a: if secret, traverse a 4MB
// array; otherwise skip straight to public execution. With annotations on,
// the traversal is marked secret in both usage and progress (it is
// control-dependent on the secret).
func Figure1a(secret bool, annotated bool) isa.Stream {
	t := &traversal{lines: demoArrayBytes / cache.LineBytes, stride: 1, filler: demoFiller()}
	if !secret {
		t.done = true
	}
	if annotated {
		t.flags = isa.FlagSecretUse | isa.FlagSecretProgress
	}
	return t
}

// Figure1b returns the snippet of Figure 1b: the traversal always executes,
// but the secret scales the index stride, changing how many distinct lines
// are touched (stride 0 would degenerate to one line; we model secret as a
// small positive multiplier the way access(&arr[i*secret]) behaves). With
// annotations on, only the accesses are marked secret (data dependence);
// the instructions still count toward progress.
func Figure1b(secret uint64, annotated bool) isa.Stream {
	if secret == 0 {
		secret = 1
	}
	t := &traversal{lines: demoArrayBytes / cache.LineBytes, stride: secret, filler: demoFiller()}
	if annotated {
		t.flags = isa.FlagSecretUse
	}
	return t
}

// Figure1c returns the snippet of Figure 1c: a secret-gated delay (modelled
// as a spin loop, Section 6.1) followed by the public 4MB traversal. The
// traversal itself is public; only its timing is secret-dependent. The spin
// is annotated FlagTimingDep when annotations are on, excluding it from
// progress, but the timing shift it causes remains — that residue is
// exactly the scheduling leakage Untangle bounds with the covert-channel
// model.
func Figure1c(secret bool, annotated bool, spinInstructions uint64) isa.Stream {
	t := &traversal{lines: demoArrayBytes / cache.LineBytes, stride: 1, filler: demoFiller()}
	if secret {
		t.spin = spinInstructions
	}
	if annotated {
		// The spin is a Section 6.1 timing-dependent region; without
		// annotations it also pollutes the progress count.
		t.spinFlags = isa.FlagTimingDep
	}
	return t
}
