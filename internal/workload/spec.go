package workload

import (
	"fmt"
	"sort"
)

// KB and MB express working-set sizes in the benchmark tables.
const (
	KB = 1 << 10
	MB = 1 << 20
)

// SPECBenchmarks is the table of 36 synthetic benchmarks standing in for the
// SPEC CPU2017 slices of Figure 11 (one entry per application+input, named
// exactly as the paper names them). ColdBytes is calibrated so the
// LLC-sensitivity study classifies the same 8 benchmarks as LLC-sensitive
// (adequate LLC size above the 2MB Static partition): cam4_0, gcc_2, gcc_4,
// lbm_0, mcf_0, parest_0, roms_0, and wrf_0.
//
// The remaining parameters add behavioural diversity (memory intensity,
// store fraction, streaming traffic, MLP, core-bound CPI) in the ranges
// typical for SPEC-class workloads.
var SPECBenchmarks = []Params{
	{Name: "blender_0", Seed: 101, MemFraction: 0.30, HotBytes: 24 * KB, HotProb: 0.72, ColdBytes: 640 * KB, StreamFrac: 0.05, WriteFrac: 0.25, MLP: 4.0, BaseCPI: 0.40},
	{Name: "bwaves_0", Seed: 102, MemFraction: 0.36, HotBytes: 16 * KB, HotProb: 0.60, ColdBytes: 1280 * KB, StreamFrac: 0.10, WriteFrac: 0.20, MLP: 6.0, BaseCPI: 0.35},
	{Name: "bwaves_1", Seed: 103, MemFraction: 0.36, HotBytes: 16 * KB, HotProb: 0.62, ColdBytes: 1280 * KB, StreamFrac: 0.10, WriteFrac: 0.20, MLP: 6.0, BaseCPI: 0.35},
	{Name: "bwaves_2", Seed: 104, MemFraction: 0.34, HotBytes: 16 * KB, HotProb: 0.64, ColdBytes: 640 * KB, StreamFrac: 0.10, WriteFrac: 0.20, MLP: 6.0, BaseCPI: 0.35},
	{Name: "bwaves_3", Seed: 105, MemFraction: 0.34, HotBytes: 16 * KB, HotProb: 0.66, ColdBytes: 640 * KB, StreamFrac: 0.10, WriteFrac: 0.20, MLP: 6.0, BaseCPI: 0.35},
	{Name: "cactuBSSN_0", Seed: 106, MemFraction: 0.32, HotBytes: 24 * KB, HotProb: 0.68, ColdBytes: 640 * KB, StreamFrac: 0.08, WriteFrac: 0.30, MLP: 5.0, BaseCPI: 0.45},
	{Name: "cam4_0", Seed: 107, MemFraction: 0.33, HotBytes: 24 * KB, HotProb: 0.58, ColdBytes: 1800 * KB, StreamFrac: 0.05, ScanFrac: 0.60, WriteFrac: 0.25, MLP: 5.5, BaseCPI: 0.40},
	{Name: "deepsjeng_0", Seed: 108, MemFraction: 0.27, HotBytes: 24 * KB, HotProb: 0.78, ColdBytes: 320 * KB, StreamFrac: 0.02, WriteFrac: 0.20, MLP: 3.0, BaseCPI: 0.55},
	{Name: "exchange2_0", Seed: 109, MemFraction: 0.22, HotBytes: 20 * KB, HotProb: 0.90, ColdBytes: 112 * KB, StreamFrac: 0.00, WriteFrac: 0.30, MLP: 2.5, BaseCPI: 0.50},
	{Name: "fotonik3d_0", Seed: 110, MemFraction: 0.38, HotBytes: 16 * KB, HotProb: 0.55, ColdBytes: 1280 * KB, StreamFrac: 0.10, WriteFrac: 0.25, MLP: 6.0, BaseCPI: 0.30},
	{Name: "gcc_0", Seed: 111, MemFraction: 0.30, HotBytes: 28 * KB, HotProb: 0.70, ColdBytes: 640 * KB, StreamFrac: 0.05, WriteFrac: 0.25, MLP: 3.5, BaseCPI: 0.50},
	{Name: "gcc_1", Seed: 112, MemFraction: 0.30, HotBytes: 28 * KB, HotProb: 0.70, ColdBytes: 640 * KB, StreamFrac: 0.05, WriteFrac: 0.25, MLP: 3.5, BaseCPI: 0.50},
	{Name: "gcc_2", Seed: 113, MemFraction: 0.32, HotBytes: 28 * KB, HotProb: 0.55, ColdBytes: 2200 * KB, StreamFrac: 0.05, ScanFrac: 0.60, WriteFrac: 0.25, MLP: 5.0, BaseCPI: 0.45},
	{Name: "gcc_3", Seed: 114, MemFraction: 0.30, HotBytes: 28 * KB, HotProb: 0.70, ColdBytes: 640 * KB, StreamFrac: 0.05, WriteFrac: 0.25, MLP: 3.5, BaseCPI: 0.50},
	{Name: "gcc_4", Seed: 115, MemFraction: 0.32, HotBytes: 28 * KB, HotProb: 0.58, ColdBytes: 1800 * KB, StreamFrac: 0.05, ScanFrac: 0.60, WriteFrac: 0.25, MLP: 5.0, BaseCPI: 0.45},
	{Name: "imagick_0", Seed: 116, MemFraction: 0.24, HotBytes: 20 * KB, HotProb: 0.85, ColdBytes: 160 * KB, StreamFrac: 0.05, WriteFrac: 0.20, MLP: 3.0, BaseCPI: 0.45},
	{Name: "lbm_0", Seed: 117, MemFraction: 0.40, HotBytes: 16 * KB, HotProb: 0.50, ColdBytes: 3600 * KB, StreamFrac: 0.08, ScanFrac: 0.62, WriteFrac: 0.40, MLP: 7.0, BaseCPI: 0.30},
	{Name: "leela_0", Seed: 118, MemFraction: 0.26, HotBytes: 24 * KB, HotProb: 0.80, ColdBytes: 320 * KB, StreamFrac: 0.02, WriteFrac: 0.20, MLP: 2.5, BaseCPI: 0.55},
	{Name: "mcf_0", Seed: 119, MemFraction: 0.35, HotBytes: 24 * KB, HotProb: 0.45, ColdBytes: 3600 * KB, StreamFrac: 0.02, ScanFrac: 0.62, WriteFrac: 0.25, MLP: 5.0, BaseCPI: 0.40},
	{Name: "nab_0", Seed: 120, MemFraction: 0.28, HotBytes: 24 * KB, HotProb: 0.78, ColdBytes: 320 * KB, StreamFrac: 0.05, WriteFrac: 0.25, MLP: 4.0, BaseCPI: 0.45},
	{Name: "namd_0", Seed: 121, MemFraction: 0.28, HotBytes: 24 * KB, HotProb: 0.80, ColdBytes: 320 * KB, StreamFrac: 0.05, WriteFrac: 0.25, MLP: 4.5, BaseCPI: 0.40},
	{Name: "omnetpp_0", Seed: 122, MemFraction: 0.33, HotBytes: 24 * KB, HotProb: 0.62, ColdBytes: 1280 * KB, StreamFrac: 0.02, WriteFrac: 0.30, MLP: 3.0, BaseCPI: 0.50},
	{Name: "parest_0", Seed: 123, MemFraction: 0.34, HotBytes: 24 * KB, HotProb: 0.48, ColdBytes: 3600 * KB, StreamFrac: 0.05, ScanFrac: 0.62, WriteFrac: 0.25, MLP: 5.5, BaseCPI: 0.35},
	{Name: "perlbench_0", Seed: 124, MemFraction: 0.29, HotBytes: 28 * KB, HotProb: 0.78, ColdBytes: 320 * KB, StreamFrac: 0.02, WriteFrac: 0.30, MLP: 3.0, BaseCPI: 0.50},
	{Name: "perlbench_1", Seed: 125, MemFraction: 0.29, HotBytes: 28 * KB, HotProb: 0.78, ColdBytes: 320 * KB, StreamFrac: 0.02, WriteFrac: 0.30, MLP: 3.0, BaseCPI: 0.50},
	{Name: "perlbench_2", Seed: 126, MemFraction: 0.29, HotBytes: 28 * KB, HotProb: 0.78, ColdBytes: 320 * KB, StreamFrac: 0.02, WriteFrac: 0.30, MLP: 3.0, BaseCPI: 0.50},
	{Name: "povray_0", Seed: 127, MemFraction: 0.24, HotBytes: 20 * KB, HotProb: 0.86, ColdBytes: 160 * KB, StreamFrac: 0.02, WriteFrac: 0.25, MLP: 2.5, BaseCPI: 0.50},
	{Name: "roms_0", Seed: 128, MemFraction: 0.36, HotBytes: 16 * KB, HotProb: 0.55, ColdBytes: 2176 * KB, StreamFrac: 0.08, ScanFrac: 0.60, WriteFrac: 0.30, MLP: 6.0, BaseCPI: 0.35},
	{Name: "wrf_0", Seed: 129, MemFraction: 0.35, HotBytes: 20 * KB, HotProb: 0.50, ColdBytes: 3600 * KB, StreamFrac: 0.06, ScanFrac: 0.62, WriteFrac: 0.30, MLP: 6.0, BaseCPI: 0.35},
	{Name: "x264_0", Seed: 130, MemFraction: 0.27, HotBytes: 24 * KB, HotProb: 0.80, ColdBytes: 320 * KB, StreamFrac: 0.08, WriteFrac: 0.25, MLP: 4.0, BaseCPI: 0.45},
	{Name: "x264_1", Seed: 131, MemFraction: 0.27, HotBytes: 24 * KB, HotProb: 0.80, ColdBytes: 320 * KB, StreamFrac: 0.08, WriteFrac: 0.25, MLP: 4.0, BaseCPI: 0.45},
	{Name: "x264_2", Seed: 132, MemFraction: 0.27, HotBytes: 24 * KB, HotProb: 0.80, ColdBytes: 320 * KB, StreamFrac: 0.08, WriteFrac: 0.25, MLP: 4.0, BaseCPI: 0.45},
	{Name: "xalancbmk_0", Seed: 133, MemFraction: 0.31, HotBytes: 28 * KB, HotProb: 0.68, ColdBytes: 640 * KB, StreamFrac: 0.02, WriteFrac: 0.25, MLP: 3.0, BaseCPI: 0.50},
	{Name: "xz_0", Seed: 134, MemFraction: 0.30, HotBytes: 24 * KB, HotProb: 0.68, ColdBytes: 640 * KB, StreamFrac: 0.05, WriteFrac: 0.30, MLP: 3.5, BaseCPI: 0.45},
	{Name: "xz_1", Seed: 135, MemFraction: 0.30, HotBytes: 24 * KB, HotProb: 0.68, ColdBytes: 640 * KB, StreamFrac: 0.05, WriteFrac: 0.30, MLP: 3.5, BaseCPI: 0.45},
	{Name: "xz_2", Seed: 136, MemFraction: 0.32, HotBytes: 24 * KB, HotProb: 0.64, ColdBytes: 1280 * KB, StreamFrac: 0.05, WriteFrac: 0.30, MLP: 3.5, BaseCPI: 0.45},
}

// LLCSensitive lists the benchmarks the calibration classifies as
// LLC-sensitive (adequate LLC size above the 2MB Static partition), matching
// the bolded benchmarks of Figures 10-17.
var LLCSensitive = map[string]bool{
	"cam4_0": true, "gcc_2": true, "gcc_4": true, "lbm_0": true,
	"mcf_0": true, "parest_0": true, "roms_0": true, "wrf_0": true,
}

// SPECByName returns the parameters of a named SPEC-like benchmark.
func SPECByName(name string) (Params, error) {
	for _, p := range SPECBenchmarks {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown SPEC benchmark %q", name)
}

// SPECNames returns all benchmark names in table order.
func SPECNames() []string {
	names := make([]string, len(SPECBenchmarks))
	for i, p := range SPECBenchmarks {
		names[i] = p.Name
	}
	return names
}

// SortedSPECNames returns the names sorted alphabetically, the order used by
// the Figure 11 chart.
func SortedSPECNames() []string {
	names := SPECNames()
	sort.Strings(names)
	return names
}
