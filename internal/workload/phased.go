package workload

import (
	"fmt"

	"untangle/internal/isa"
)

// Phase is one stage of a phase-changing workload.
type Phase struct {
	// Params is the behaviour during the phase.
	Params Params
	// Instructions is the phase length.
	Instructions uint64
}

// PhasedGenerator cycles through behaviour phases — the dynamic environment
// that motivates dynamic partitioning in the first place (Section 1: "in
// such an environment, any static partition is suboptimal"). A program might
// stream through input, then build a large in-memory structure, then probe
// it; its LLC demand swings accordingly, and only a dynamic scheme can track
// it.
type PhasedGenerator struct {
	phases []*Generator
	lens   []uint64
	cur    int
	left   uint64
}

// NewPhasedGenerator validates and builds the generator; phases repeat
// cyclically forever.
func NewPhasedGenerator(phases []Phase) (*PhasedGenerator, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: no phases")
	}
	g := &PhasedGenerator{}
	for i, ph := range phases {
		if ph.Instructions == 0 {
			return nil, fmt.Errorf("workload: phase %d has zero length", i)
		}
		gen, err := NewGenerator(ph.Params)
		if err != nil {
			return nil, fmt.Errorf("workload: phase %d: %w", i, err)
		}
		g.phases = append(g.phases, gen)
		g.lens = append(g.lens, ph.Instructions)
	}
	g.left = g.lens[0]
	return g, nil
}

// Fill implements isa.Stream.
func (g *PhasedGenerator) Fill(buf []isa.Op) int {
	if len(buf) == 0 {
		return 0
	}
	n := g.phases[g.cur].Fill(buf)
	out := 0
	for i := 0; i < n; i++ {
		op := buf[i]
		in := op.Instructions()
		if in <= g.left {
			buf[out] = op
			out++
			g.left -= in
			if g.left == 0 {
				g.advance()
				break
			}
			continue
		}
		// Split at the phase boundary: emit the plain prefix, drop the
		// remainder (generators are statistical; no state to preserve).
		op.NonMem = uint32(g.left)
		op.Flags &^= isa.FlagMem | isa.FlagWrite
		if op.NonMem > 0 {
			buf[out] = op
			out++
		}
		g.advance()
		break
	}
	return out
}

func (g *PhasedGenerator) advance() {
	g.cur = (g.cur + 1) % len(g.phases)
	g.left = g.lens[g.cur]
}

// CurrentPhase returns the active phase index (for tests and diagnostics).
func (g *PhasedGenerator) CurrentPhase() int { return g.cur }

// BurstyWorkload returns a two-phase workload alternating between a small
// footprint (fits 256kB) and a large one (wants bigMB megabytes), each phase
// lasting phaseInstructions. It is the standard demand-swing scenario used
// by the adaptation experiments.
func BurstyWorkload(seed uint64, bigMB int64, phaseInstructions uint64) (*PhasedGenerator, Params, error) {
	small := Params{
		Name: "bursty-small", Seed: seed,
		MemFraction: 0.30, HotBytes: 16 * KB, HotProb: 0.80,
		ColdBytes: 160 * KB, WriteFrac: 0.25, MLP: 4, BaseCPI: 0.4,
	}
	big := Params{
		Name: "bursty-big", Seed: seed + 1,
		MemFraction: 0.34, HotBytes: 16 * KB, HotProb: 0.50,
		ColdBytes: uint64(bigMB) * MB, ScanFrac: 0.5, WriteFrac: 0.25, MLP: 5, BaseCPI: 0.35,
	}
	g, err := NewPhasedGenerator([]Phase{
		{Params: small, Instructions: phaseInstructions},
		{Params: big, Instructions: phaseInstructions},
	})
	if err != nil {
		return nil, Params{}, err
	}
	// Timing parameters for the cpu model: use the heavier phase's.
	return g, big, nil
}
