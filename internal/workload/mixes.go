package workload

import (
	"fmt"

	"untangle/internal/isa"
)

// Pair is one workload of a mix: a SPEC17 benchmark sharing a domain (and
// hence an LLC partition) with a cryptographic benchmark.
type Pair struct {
	SPEC   string
	Crypto string
}

// String formats the pair the way the figures label it.
func (p Pair) String() string { return p.SPEC + "+" + p.Crypto }

// Mix is one of the 16 evaluated 8-workload mixes.
type Mix struct {
	// ID is the paper's mix number (1-16).
	ID int
	// Pairs lists the 8 workloads.
	Pairs [8]Pair
}

// SensitiveCount returns how many SPEC members are LLC-sensitive.
func (m Mix) SensitiveCount() int {
	n := 0
	for _, p := range m.Pairs {
		if LLCSensitive[p.SPEC] {
			n++
		}
	}
	return n
}

// Mixes reproduces the 16 workload mixes of Figures 10 and 12-17.
var Mixes = []Mix{
	{ID: 1, Pairs: [8]Pair{{"blender_0", "AES-128"}, {"bwaves_1", "AES-256"}, {"deepsjeng_0", "Chacha20"}, {"gcc_2", "EdDSA"}, {"gcc_3", "RSA-2048"}, {"imagick_0", "RSA-4096"}, {"parest_0", "ECDSA"}, {"xz_0", "SHA-256"}}},
	{ID: 2, Pairs: [8]Pair{{"blender_0", "AES-128"}, {"bwaves_1", "AES-256"}, {"gcc_2", "Chacha20"}, {"imagick_0", "EdDSA"}, {"mcf_0", "RSA-2048"}, {"parest_0", "RSA-4096"}, {"roms_0", "ECDSA"}, {"xz_0", "SHA-256"}}},
	{ID: 3, Pairs: [8]Pair{{"blender_0", "AES-128"}, {"gcc_2", "AES-256"}, {"imagick_0", "Chacha20"}, {"lbm_0", "EdDSA"}, {"mcf_0", "RSA-2048"}, {"parest_0", "RSA-4096"}, {"roms_0", "ECDSA"}, {"wrf_0", "SHA-256"}}},
	{ID: 4, Pairs: [8]Pair{{"cam4_0", "AES-128"}, {"gcc_2", "AES-256"}, {"gcc_4", "Chacha20"}, {"lbm_0", "EdDSA"}, {"mcf_0", "RSA-2048"}, {"parest_0", "RSA-4096"}, {"roms_0", "ECDSA"}, {"wrf_0", "SHA-256"}}},
	{ID: 5, Pairs: [8]Pair{{"exchange2_0", "AES-128"}, {"lbm_0", "AES-256"}, {"perlbench_0", "Chacha20"}, {"wrf_0", "EdDSA"}, {"x264_1", "RSA-2048"}, {"x264_2", "RSA-4096"}, {"xalancbmk_0", "ECDSA"}, {"xz_1", "SHA-256"}}},
	{ID: 6, Pairs: [8]Pair{{"lbm_0", "AES-128"}, {"mcf_0", "AES-256"}, {"parest_0", "Chacha20"}, {"perlbench_0", "EdDSA"}, {"wrf_0", "RSA-2048"}, {"x264_2", "RSA-4096"}, {"xalancbmk_0", "ECDSA"}, {"xz_1", "SHA-256"}}},
	{ID: 7, Pairs: [8]Pair{{"gcc_2", "AES-128"}, {"gcc_4", "AES-256"}, {"lbm_0", "Chacha20"}, {"mcf_0", "EdDSA"}, {"parest_0", "RSA-2048"}, {"wrf_0", "RSA-4096"}, {"x264_2", "ECDSA"}, {"xalancbmk_0", "SHA-256"}}},
	{ID: 8, Pairs: [8]Pair{{"bwaves_0", "AES-128"}, {"cactuBSSN_0", "AES-256"}, {"cam4_0", "Chacha20"}, {"gcc_1", "EdDSA"}, {"nab_0", "RSA-2048"}, {"perlbench_2", "RSA-4096"}, {"roms_0", "ECDSA"}, {"xz_2", "SHA-256"}}},
	{ID: 9, Pairs: [8]Pair{{"bwaves_0", "AES-128"}, {"cactuBSSN_0", "AES-256"}, {"cam4_0", "Chacha20"}, {"gcc_1", "EdDSA"}, {"gcc_4", "RSA-2048"}, {"nab_0", "RSA-4096"}, {"roms_0", "ECDSA"}, {"wrf_0", "SHA-256"}}},
	{ID: 10, Pairs: [8]Pair{{"bwaves_0", "AES-128"}, {"cam4_0", "AES-256"}, {"gcc_1", "Chacha20"}, {"gcc_2", "EdDSA"}, {"gcc_4", "RSA-2048"}, {"lbm_0", "RSA-4096"}, {"roms_0", "ECDSA"}, {"wrf_0", "SHA-256"}}},
	{ID: 11, Pairs: [8]Pair{{"bwaves_2", "AES-128"}, {"fotonik3d_0", "AES-256"}, {"gcc_4", "Chacha20"}, {"lbm_0", "EdDSA"}, {"leela_0", "RSA-2048"}, {"namd_0", "RSA-4096"}, {"omnetpp_0", "ECDSA"}, {"x264_0", "SHA-256"}}},
	{ID: 12, Pairs: [8]Pair{{"fotonik3d_0", "AES-128"}, {"gcc_4", "AES-256"}, {"lbm_0", "Chacha20"}, {"leela_0", "EdDSA"}, {"namd_0", "RSA-2048"}, {"omnetpp_0", "RSA-4096"}, {"roms_0", "ECDSA"}, {"wrf_0", "SHA-256"}}},
	{ID: 13, Pairs: [8]Pair{{"gcc_4", "AES-128"}, {"lbm_0", "AES-256"}, {"leela_0", "Chacha20"}, {"mcf_0", "EdDSA"}, {"namd_0", "RSA-2048"}, {"parest_0", "RSA-4096"}, {"roms_0", "ECDSA"}, {"wrf_0", "SHA-256"}}},
	{ID: 14, Pairs: [8]Pair{{"bwaves_3", "AES-128"}, {"cam4_0", "AES-256"}, {"gcc_0", "Chacha20"}, {"imagick_0", "EdDSA"}, {"nab_0", "RSA-2048"}, {"perlbench_1", "RSA-4096"}, {"povray_0", "ECDSA"}, {"roms_0", "SHA-256"}}},
	{ID: 15, Pairs: [8]Pair{{"bwaves_3", "AES-128"}, {"cam4_0", "AES-256"}, {"gcc_2", "Chacha20"}, {"imagick_0", "EdDSA"}, {"lbm_0", "RSA-2048"}, {"perlbench_1", "RSA-4096"}, {"povray_0", "ECDSA"}, {"roms_0", "SHA-256"}}},
	{ID: 16, Pairs: [8]Pair{{"cam4_0", "AES-128"}, {"gcc_2", "AES-256"}, {"lbm_0", "Chacha20"}, {"mcf_0", "EdDSA"}, {"parest_0", "RSA-2048"}, {"perlbench_1", "RSA-4096"}, {"povray_0", "ECDSA"}, {"roms_0", "SHA-256"}}},
}

// MixByID returns the mix with the given paper ID.
func MixByID(id int) (Mix, error) {
	for _, m := range Mixes {
		if m.ID == id {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %d", id)
}

// PairStream builds the paper's interleaved instruction stream for one
// workload: repeatedly cryptoLen instructions of the crypto benchmark, then
// specLen instructions of the SPEC benchmark (both making forward progress),
// truncated at total retired instructions. The paper uses cryptoLen = 1M,
// specLen = 10M, and total = 550M (500M SPEC + 50M crypto); experiment
// drivers scale all three together.
func (p Pair) PairStream(cryptoLen, specLen, total uint64, secret uint64) (isa.Stream, error) {
	spec, err := SPECByName(p.SPEC)
	if err != nil {
		return nil, err
	}
	crypto, err := CryptoWithSecret(p.Crypto, secret)
	if err != nil {
		return nil, err
	}
	sg, err := NewGenerator(spec)
	if err != nil {
		return nil, err
	}
	cg, err := NewGenerator(crypto)
	if err != nil {
		return nil, err
	}
	return isa.NewLimited(isa.NewLoop(cg, cryptoLen, sg, specLen), total), nil
}
