package workload

import (
	"testing"
	"testing/quick"

	"untangle/internal/cache"
	"untangle/internal/isa"
)

func TestAllTablesValidate(t *testing.T) {
	for _, p := range SPECBenchmarks {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Secret {
			t.Errorf("%s: SPEC benchmarks are public", p.Name)
		}
	}
	for _, p := range CryptoBenchmarks {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if !p.Secret {
			t.Errorf("%s: crypto benchmarks must be fully secret-annotated", p.Name)
		}
	}
}

func TestTableShapesMatchPaper(t *testing.T) {
	if len(SPECBenchmarks) != 36 {
		t.Errorf("SPEC table has %d entries, want 36", len(SPECBenchmarks))
	}
	if len(CryptoBenchmarks) != 8 {
		t.Errorf("crypto table has %d entries, want 8 (Table 5)", len(CryptoBenchmarks))
	}
	if len(Mixes) != 16 {
		t.Errorf("%d mixes, want 16", len(Mixes))
	}
	sensitive := 0
	for _, p := range SPECBenchmarks {
		if LLCSensitive[p.Name] {
			sensitive++
		}
	}
	if sensitive != 8 {
		t.Errorf("%d LLC-sensitive benchmarks, want 8", sensitive)
	}
	// Names must be unique.
	seen := map[string]bool{}
	for _, p := range append(append([]Params{}, SPECBenchmarks...), CryptoBenchmarks...) {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark name %s", p.Name)
		}
		seen[p.Name] = true
	}
	// Seeds must be unique so streams are distinct.
	seeds := map[uint64]string{}
	for _, p := range append(append([]Params{}, SPECBenchmarks...), CryptoBenchmarks...) {
		if prev, ok := seeds[p.Seed]; ok {
			t.Errorf("benchmarks %s and %s share seed %d", prev, p.Name, p.Seed)
		}
		seeds[p.Seed] = p.Name
	}
}

func TestMixSensitiveCountsMatchFigures(t *testing.T) {
	// Figures 10 and 12-17 label each mix with its LLC-sensitive count.
	want := map[int]int{
		1: 2, 2: 4, 3: 6, 4: 8,
		5: 2, 6: 4, 7: 6,
		8: 2, 9: 4, 10: 6,
		11: 2, 12: 4, 13: 6,
		14: 2, 15: 4, 16: 6,
	}
	for _, m := range Mixes {
		if got := m.SensitiveCount(); got != want[m.ID] {
			t.Errorf("mix %d: %d sensitive benchmarks, want %d", m.ID, got, want[m.ID])
		}
		// Every mix uses the 8 crypto benchmarks exactly once.
		used := map[string]bool{}
		for _, p := range m.Pairs {
			if used[p.Crypto] {
				t.Errorf("mix %d reuses crypto %s", m.ID, p.Crypto)
			}
			used[p.Crypto] = true
			if _, err := SPECByName(p.SPEC); err != nil {
				t.Errorf("mix %d: %v", m.ID, err)
			}
		}
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := SPECByName("nope"); err == nil {
		t.Error("unknown SPEC name accepted")
	}
	if _, err := CryptoByName("nope"); err == nil {
		t.Error("unknown crypto name accepted")
	}
	if _, err := MixByID(99); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := (Pair{"nope", "AES-128"}).PairStream(10, 100, 1000, 0); err == nil {
		t.Error("bad pair accepted")
	}
	if _, err := (Pair{"mcf_0", "nope"}).PairStream(10, 100, 1000, 0); err == nil {
		t.Error("bad pair accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := SPECByName("mcf_0")
	mk := func() []isa.Op {
		g := MustNewGenerator(p)
		buf := make([]isa.Op, 4096)
		g.Fill(buf)
		return buf
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorMemFraction(t *testing.T) {
	for _, name := range []string{"mcf_0", "exchange2_0", "lbm_0"} {
		p, _ := SPECByName(name)
		g := MustNewGenerator(p)
		buf := make([]isa.Op, 1<<16)
		g.Fill(buf)
		var mem, instr uint64
		for _, op := range buf {
			instr += op.Instructions()
			if op.IsMem() {
				mem++
			}
		}
		got := float64(mem) / float64(instr)
		if got < 0.8*p.MemFraction || got > 1.25*p.MemFraction {
			t.Errorf("%s: measured mem fraction %v, want ~%v", name, got, p.MemFraction)
		}
	}
}

func TestGeneratorFootprintRespectsWorkingSets(t *testing.T) {
	p, _ := SPECByName("deepsjeng_0") // 512kB cold set
	g := MustNewGenerator(p)
	buf := make([]isa.Op, 1<<17)
	g.Fill(buf)
	lines := map[uint64]bool{}
	for _, op := range buf {
		if op.Addr >= coldBase && op.Addr < streamBase {
			lines[op.Addr/cache.LineBytes] = true
		}
	}
	maxLines := int(p.ColdBytes / cache.LineBytes)
	if len(lines) > maxLines {
		t.Errorf("cold footprint %d lines exceeds ColdBytes %d lines", len(lines), maxLines)
	}
	// Under heavy sampling most of the cold set should be touched.
	if len(lines) < maxLines/2 {
		t.Errorf("cold footprint %d lines is under half of %d", len(lines), maxLines)
	}
}

func TestCryptoSecretAnnotations(t *testing.T) {
	p, _ := CryptoByName("AES-128")
	g := MustNewGenerator(p)
	buf := make([]isa.Op, 1024)
	g.Fill(buf)
	for i, op := range buf {
		if !op.SecretUse() || !op.SecretProgress() {
			t.Fatalf("op %d of a crypto stream lacks secret annotations", i)
		}
	}
}

func TestCryptoWithSecretChangesPattern(t *testing.T) {
	a, err := CryptoWithSecret("AES-128", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := CryptoWithSecret("AES-128", 2)
	ga, gb := MustNewGenerator(a), MustNewGenerator(b)
	bufA, bufB := make([]isa.Op, 1024), make([]isa.Op, 1024)
	ga.Fill(bufA)
	gb.Fill(bufB)
	same := true
	for i := range bufA {
		if bufA[i].Addr != bufB[i].Addr {
			same = false
			break
		}
	}
	if same {
		t.Error("different secrets produced identical access patterns")
	}
}

func TestPairStreamInterleavesAndTerminates(t *testing.T) {
	s, err := Pair{"imagick_0", "SHA-256"}.PairStream(1000, 10000, 50000, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]isa.Op, 512)
	var total, secret uint64
	for {
		n := s.Fill(buf)
		if n == 0 {
			break
		}
		for _, op := range buf[:n] {
			total += op.Instructions()
			if op.SecretProgress() {
				secret += op.Instructions()
			}
		}
	}
	if total != 50000 {
		t.Errorf("total instructions = %d, want 50000", total)
	}
	// Crypto share should be about 1/11 of the stream.
	frac := float64(secret) / float64(total)
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("secret fraction = %v, want ~1/11", frac)
	}
}

func TestFigure1aSecretChangesFootprint(t *testing.T) {
	count := func(secret bool) int {
		s := Figure1a(secret, false)
		buf := make([]isa.Op, 4096)
		lines := map[uint64]bool{}
		for i := 0; i < 32; i++ {
			n := s.Fill(buf)
			for _, op := range buf[:n] {
				if op.IsMem() && op.Addr >= coldBase && op.Addr < streamBase {
					lines[op.Addr/cache.LineBytes] = true
				}
			}
		}
		return len(lines)
	}
	with, without := count(true), count(false)
	if with <= 10*without {
		t.Errorf("secret=1 footprint %d should dwarf secret=0 footprint %d", with, without)
	}
}

func TestFigure1aAnnotationsMarkTraversal(t *testing.T) {
	s := Figure1a(true, true)
	buf := make([]isa.Op, 1024)
	n := s.Fill(buf)
	if n == 0 || !buf[0].SecretUse() || !buf[0].SecretProgress() {
		t.Error("annotated Figure 1a traversal not flagged")
	}
	s = Figure1a(true, false)
	n = s.Fill(buf)
	if n == 0 || buf[0].SecretUse() {
		t.Error("unannotated Figure 1a traversal flagged")
	}
}

func TestFigure1bStrideChangesLineCount(t *testing.T) {
	distinct := func(secret uint64) int {
		s := Figure1b(secret, true)
		buf := make([]isa.Op, 4096)
		lines := map[uint64]bool{}
		for i := 0; i < 64; i++ {
			n := s.Fill(buf)
			for _, op := range buf[:n] {
				if op.IsMem() && op.Addr >= coldBase {
					lines[op.Addr/cache.LineBytes] = true
				}
			}
		}
		return len(lines)
	}
	if d1, d2 := distinct(1), distinct(8); d1 == d2 {
		t.Error("different secrets should touch different line counts")
	}
}

func TestFigure1cSpinOnlyWithSecret(t *testing.T) {
	spin := func(secret bool) uint64 {
		s := Figure1c(secret, true, 2_000_000)
		buf := make([]isa.Op, 1024)
		var n uint64
		for i := 0; i < 8; i++ {
			c := s.Fill(buf)
			for _, op := range buf[:c] {
				if !op.IsMem() && op.SecretProgress() {
					n += uint64(op.NonMem)
				}
			}
		}
		return n
	}
	if got := spin(true); got != 2_000_000 {
		t.Errorf("secret spin = %d instructions, want 2M", got)
	}
	if got := spin(false); got != 0 {
		t.Errorf("no-secret spin = %d instructions, want 0", got)
	}
	// Unannotated variant: the spin executes but carries no flags.
	s := Figure1c(true, false, 1000)
	buf := make([]isa.Op, 16)
	s.Fill(buf)
	if buf[0].NonMem == 0 || buf[0].SecretProgress() {
		t.Error("unannotated spin should be unflagged plain instructions")
	}
}

func TestPropertyGeneratorAddressesInBounds(t *testing.T) {
	f := func(seedRaw uint16, coldMB uint8) bool {
		p := Params{
			Name: "prop", Seed: uint64(seedRaw) + 1,
			MemFraction: 0.3, HotBytes: 32 * KB, HotProb: 0.7,
			ColdBytes: (uint64(coldMB%8) + 1) * MB,
			WriteFrac: 0.3, MLP: 4, BaseCPI: 0.4,
		}
		g, err := NewGenerator(p)
		if err != nil {
			return false
		}
		buf := make([]isa.Op, 2048)
		g.Fill(buf)
		for _, op := range buf {
			switch {
			case op.Addr >= hotBase && op.Addr < hotBase+p.HotBytes:
			case op.Addr >= coldBase && op.Addr < coldBase+p.ColdBytes:
			case op.Addr >= streamBase:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortedSPECNames(t *testing.T) {
	names := SortedSPECNames()
	if len(names) != 36 {
		t.Fatalf("%d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}
