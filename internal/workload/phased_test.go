package workload

import (
	"testing"

	"untangle/internal/isa"
)

func TestPhasedValidation(t *testing.T) {
	if _, err := NewPhasedGenerator(nil); err == nil {
		t.Error("no phases accepted")
	}
	p, _ := SPECByName("imagick_0")
	if _, err := NewPhasedGenerator([]Phase{{Params: p, Instructions: 0}}); err == nil {
		t.Error("zero-length phase accepted")
	}
	bad := p
	bad.MemFraction = 0
	if _, err := NewPhasedGenerator([]Phase{{Params: bad, Instructions: 10}}); err == nil {
		t.Error("invalid phase params accepted")
	}
}

func TestPhasedCyclesAndRespectsLengths(t *testing.T) {
	small, _ := SPECByName("imagick_0")
	big, _ := SPECByName("mcf_0")
	g, err := NewPhasedGenerator([]Phase{
		{Params: small, Instructions: 1000},
		{Params: big, Instructions: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]isa.Op, 64)
	var instr uint64
	// Consume exactly one full cycle plus a bit; phase boundaries must land
	// at 1000 and 3000 instructions.
	sawPhases := map[int]bool{}
	for instr < 6000 {
		before := g.CurrentPhase()
		n := g.Fill(buf)
		if n == 0 {
			t.Fatal("phased generator ran dry")
		}
		sawPhases[before] = true
		for _, op := range buf[:n] {
			instr += op.Instructions()
		}
	}
	if !sawPhases[0] || !sawPhases[1] {
		t.Errorf("phases seen: %v, want both", sawPhases)
	}
}

func TestPhasedFootprintSwings(t *testing.T) {
	g, _, err := BurstyWorkload(1, 4, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]isa.Op, 4096)
	// Phase 0 (small): distinct cold lines stay bounded by 160kB.
	distinct := func(budget uint64) int {
		lines := map[uint64]bool{}
		var n uint64
		for n < budget {
			c := g.Fill(buf)
			for _, op := range buf[:c] {
				n += op.Instructions()
				if op.IsMem() {
					lines[op.Addr/64] = true
				}
			}
		}
		return len(lines)
	}
	smallLines := distinct(50_000)
	bigLines := distinct(50_000)
	if bigLines < 2*smallLines {
		t.Errorf("big phase footprint (%d lines) should dwarf small phase (%d)", bigLines, smallLines)
	}
}
