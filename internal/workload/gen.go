// Package workload provides the synthetic instruction-stream generators that
// stand in for the paper's SPEC CPU2017 slices and OpenSSL 3.0.5 crypto
// benchmarks (Section 8, Table 5), the 16 workload mixes of the evaluation,
// and the Figure 1 leakage demonstration snippets.
//
// Each generator is a deterministic function of its parameters and seed and
// implements isa.Stream. A benchmark is modelled by its memory behaviour —
// the only property the evaluation consumes: a small hot working set that
// mostly lives in the L1, and a cold working set whose size determines how
// the benchmark responds to LLC partition size. ColdBytes is calibrated per
// benchmark so that the Figure 11 sensitivity study reproduces the paper's
// classification (8 LLC-sensitive benchmarks, 28 LLC-insensitive ones).
package workload

import (
	"fmt"

	"untangle/internal/cache"
	"untangle/internal/cpu"
	"untangle/internal/isa"
)

// Address-space layout of one generator. The simulator additionally offsets
// every domain into a private region, so workloads never alias.
const (
	hotBase    = 0x1_0000_0000
	coldBase   = 0x2_0000_0000
	streamBase = 0x6_0000_0000
)

// Params fully describes a synthetic benchmark.
type Params struct {
	// Name identifies the benchmark (e.g. "mcf_0", "AES-128").
	Name string
	// Seed makes the stream deterministic and distinct across benchmarks.
	Seed uint64

	// MemFraction is the fraction of retired instructions that are memory
	// accesses.
	MemFraction float64
	// HotBytes is the hot working set (stack, hot globals); it should fit
	// the 32 kB L1 for most benchmarks.
	HotBytes uint64
	// HotProb is the probability a memory access targets the hot set.
	HotProb float64
	// ColdBytes is the cold working set, accessed uniformly at random; its
	// size sets the benchmark's LLC demand.
	ColdBytes uint64
	// StreamFrac is the fraction of cold accesses that stream sequentially
	// through a separate region instead (never-reused traffic).
	StreamFrac float64
	// ScanFrac is the fraction of cold accesses that cyclically scan the
	// cold region in order. Under LRU a cyclic scan hits only once the
	// whole region fits, giving the utility curve the sharp knee at the
	// working-set size that real array-looping workloads (mcf, lbm, ...)
	// exhibit; the knee is what makes the hit-maximizing allocator
	// concentrate capacity on a few winners in over-committed mixes.
	ScanFrac float64
	// WriteFrac is the store fraction of memory accesses.
	WriteFrac float64

	// MLP and BaseCPI parameterize the cpu timing model for this workload.
	MLP     float64
	BaseCPI float64

	// Secret annotates every emitted op as secret-dependent in both usage
	// and control (the paper's conservative treatment of the crypto
	// benchmarks: "we conservatively assume that all instructions from the
	// cryptographic benchmark are secret-dependent").
	Secret bool
	// SecretSalt perturbs the access pattern as a function of a secret
	// input, used by leakage experiments that run the same benchmark under
	// different secrets.
	SecretSalt uint64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if p.MemFraction <= 0 || p.MemFraction >= 1 {
		return fmt.Errorf("workload %s: MemFraction %v out of (0,1)", p.Name, p.MemFraction)
	}
	if p.HotProb < 0 || p.HotProb > 1 || p.StreamFrac < 0 || p.StreamFrac > 1 ||
		p.WriteFrac < 0 || p.WriteFrac > 1 || p.ScanFrac < 0 || p.ScanFrac > 1 {
		return fmt.Errorf("workload %s: probability out of range", p.Name)
	}
	if p.StreamFrac+p.ScanFrac > 1 {
		return fmt.Errorf("workload %s: StreamFrac+ScanFrac exceed 1", p.Name)
	}
	if p.HotBytes < cache.LineBytes || p.ColdBytes < cache.LineBytes {
		return fmt.Errorf("workload %s: working sets must be at least one line", p.Name)
	}
	if p.MLP <= 0 || p.BaseCPI < 0 {
		return fmt.Errorf("workload %s: invalid timing params", p.Name)
	}
	return nil
}

// CPUParams returns the cpu model parameters for this benchmark on the
// Table 3 machine.
func (p Params) CPUParams() cpu.Params {
	c := cpu.DefaultParams()
	c.MLP = p.MLP
	c.BaseCPI = p.BaseCPI
	return c
}

// Generator emits the benchmark's retired instruction stream.
type Generator struct {
	p         Params
	rng       uint64
	streamPos uint64
	hotLines  uint64
	coldLines uint64
	warmLines uint64 // the popular fifth of the cold set
	coolLines uint64
	// Precomputed integer thresholds for the per-op draws, against a
	// 16-bit fixed-point random value.
	memGapMax  uint64
	hotThresh  uint64
	strThresh  uint64
	scanThresh uint64
	scanPos    uint64
	wrThresh   uint64
	flags      isa.Flags
	secretSalt uint64
}

// NewGenerator builds a generator; parameters must validate.
func NewGenerator(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		p:          p,
		rng:        splitmix64Seed(p.Seed),
		hotLines:   p.HotBytes / cache.LineBytes,
		coldLines:  p.ColdBytes / cache.LineBytes,
		hotThresh:  uint64(p.HotProb * 65536),
		strThresh:  uint64(p.StreamFrac * 65536),
		scanThresh: uint64((p.StreamFrac + p.ScanFrac) * 65536),
		wrThresh:   uint64(p.WriteFrac * 65536),
		secretSalt: p.SecretSalt,
	}
	// The cold set is two-tier: a popular fifth of the lines receives just
	// over half of the cold accesses. This gives every benchmark the
	// concave miss-rate-versus-capacity curve real programs have; with
	// purely uniform access the utility curves would be linear, leaving the
	// hit-maximizing allocator indifferent between allocations (and prone
	// to oscillating among them).
	g.warmLines = g.coldLines / 5
	if g.warmLines == 0 {
		g.warmLines = 1
	}
	g.coolLines = g.coldLines - g.warmLines
	if g.coolLines == 0 {
		g.coolLines = 1
	}
	// Average non-mem gap between memory ops: (1-f)/f. Gaps are drawn
	// uniformly in [0, 2*avg], preserving the mean.
	avgGap := (1 - p.MemFraction) / p.MemFraction
	g.memGapMax = uint64(2*avgGap + 0.5)
	if p.Secret {
		g.flags = isa.FlagSecretUse | isa.FlagSecretProgress
	}
	return g, nil
}

// MustNewGenerator panics on invalid parameters (static tables only).
func MustNewGenerator(p Params) *Generator {
	g, err := NewGenerator(p)
	if err != nil {
		panic(err)
	}
	return g
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.p }

func splitmix64Seed(seed uint64) uint64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return seed
}

// next is a splitmix64 step: fast, deterministic, stateless beyond one word.
func (g *Generator) next() uint64 {
	g.rng += 0x9E3779B97F4A7C15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Fill implements isa.Stream: the generator is infinite.
func (g *Generator) Fill(buf []isa.Op) int {
	for i := range buf {
		r := g.next()
		addrRand := g.next()
		op := isa.Op{Flags: isa.FlagMem | g.flags}
		if g.memGapMax > 0 {
			op.NonMem = uint32(r % (g.memGapMax + 1))
		}
		r >>= 16
		sel := r & 0xFFFF
		r >>= 16
		switch {
		case sel < g.hotThresh:
			op.Addr = hotBase + (addrRand^g.secretSalt)%g.hotLines*cache.LineBytes
		case (r & 0xFFFF) < g.strThresh:
			op.Addr = streamBase + g.streamPos*cache.LineBytes
			g.streamPos++
		case (r & 0xFFFF) < g.scanThresh:
			op.Addr = coldBase + g.scanPos*cache.LineBytes
			g.scanPos = (g.scanPos + 1) % g.coldLines
		default:
			idx := addrRand ^ g.secretSalt
			if (addrRand>>48)&0xFFFF < 0x8CCD { // 55% of cold accesses hit the warm fifth
				idx %= g.warmLines
			} else {
				idx = g.warmLines + idx%g.coolLines
			}
			op.Addr = coldBase + idx*cache.LineBytes
		}
		if (r>>16)&0xFFFF < g.wrThresh {
			op.Flags |= isa.FlagWrite
		}
		buf[i] = op
	}
	return len(buf)
}
