package workload

import "fmt"

// CryptoBenchmarks is the Table 5 set of OpenSSL-like cryptographic kernels.
// Their footprints are small (key schedules, T-tables, bignum buffers, and a
// 10 kB payload), so they have "much smaller LLC use" than the SPEC part of
// the workload, as the paper notes. Every instruction they retire is
// annotated secret-dependent (Secret: true), matching the paper's
// conservative assumption.
var CryptoBenchmarks = []Params{
	{Name: "Chacha20", Seed: 201, MemFraction: 0.28, HotBytes: 4 * KB, HotProb: 0.80, ColdBytes: 12 * KB, StreamFrac: 0.30, WriteFrac: 0.35, MLP: 4.0, BaseCPI: 0.35, Secret: true},
	{Name: "AES-128", Seed: 202, MemFraction: 0.32, HotBytes: 6 * KB, HotProb: 0.70, ColdBytes: 14 * KB, StreamFrac: 0.20, WriteFrac: 0.30, MLP: 3.5, BaseCPI: 0.40, Secret: true},
	{Name: "AES-256", Seed: 203, MemFraction: 0.32, HotBytes: 6 * KB, HotProb: 0.70, ColdBytes: 16 * KB, StreamFrac: 0.20, WriteFrac: 0.30, MLP: 3.5, BaseCPI: 0.42, Secret: true},
	{Name: "SHA-256", Seed: 204, MemFraction: 0.25, HotBytes: 2 * KB, HotProb: 0.85, ColdBytes: 12 * KB, StreamFrac: 0.40, WriteFrac: 0.20, MLP: 3.0, BaseCPI: 0.45, Secret: true},
	{Name: "RSA-2048", Seed: 205, MemFraction: 0.30, HotBytes: 8 * KB, HotProb: 0.75, ColdBytes: 40 * KB, StreamFrac: 0.05, WriteFrac: 0.30, MLP: 2.5, BaseCPI: 0.50, Secret: true},
	{Name: "RSA-4096", Seed: 206, MemFraction: 0.30, HotBytes: 8 * KB, HotProb: 0.70, ColdBytes: 72 * KB, StreamFrac: 0.05, WriteFrac: 0.30, MLP: 2.5, BaseCPI: 0.50, Secret: true},
	{Name: "ECDSA", Seed: 207, MemFraction: 0.28, HotBytes: 6 * KB, HotProb: 0.78, ColdBytes: 24 * KB, StreamFrac: 0.05, WriteFrac: 0.25, MLP: 3.0, BaseCPI: 0.48, Secret: true},
	{Name: "EdDSA", Seed: 208, MemFraction: 0.28, HotBytes: 6 * KB, HotProb: 0.78, ColdBytes: 20 * KB, StreamFrac: 0.05, WriteFrac: 0.25, MLP: 3.0, BaseCPI: 0.48, Secret: true},
}

// CryptoByName returns the parameters of a named crypto benchmark.
func CryptoByName(name string) (Params, error) {
	for _, p := range CryptoBenchmarks {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown crypto benchmark %q", name)
}

// CryptoWithSecret returns the benchmark with its access pattern perturbed
// by a secret value. Under the paper's threat model this models the
// secret-dependent data flow inside the cipher; because the benchmark is
// fully annotated, Untangle's metric never sees these accesses.
func CryptoWithSecret(name string, secret uint64) (Params, error) {
	p, err := CryptoByName(name)
	if err != nil {
		return Params{}, err
	}
	p.SecretSalt = secret
	return p, nil
}
