// Package untangle is a from-scratch Go reproduction of "Untangle: A
// Principled Framework to Design Low-Leakage, High-Performance Dynamic
// Partitioning Schemes" (Zhao, Morrison, Fletcher, Torrellas — ASPLOS 2023).
//
// The library is organized under internal/:
//
//	info        entropy and mutual information (Section 2.2)
//	covert      the covert-channel model and R'max computation (Section 5.3, Appendix A)
//	core        the Untangle framework: leakage decomposition and runtime accounting (Sections 5, 7)
//	isa         retired-instruction streams and annotations (Section 5.2)
//	workload    synthetic SPEC17-like and crypto benchmarks, the 16 mixes (Section 8, Table 5)
//	cache       set-associative caches and set-partitioned LLC resizing
//	monitor     the timing-independent UMON-style utilization metric (Section 7)
//	cpu         the cycle-accounting core timing model (Table 3)
//	partition   schemes and the hit-maximizing allocator (Tables 1, 2, 4)
//	sim         the multicore simulation driver
//	attacker    passive, active, replay, and covert-channel adversaries (Sections 4, 6.2, 9)
//	experiments the evaluation harness for every table and figure (Section 9, Appendix B)
//	report      paper-layout renderers
//	stats       geomean and quartile helpers
//
// Executables live under cmd/ (untangle-sim, sensitivity, rmax,
// experiments); runnable examples under examples/. The benchmark harness in
// bench_test.go regenerates every table and figure of the evaluation; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-versus-measured results.
package untangle
