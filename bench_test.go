// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 9 and Appendix B), plus ablation benchmarks for the
// design choices DESIGN.md calls out. Each benchmark runs the corresponding
// experiment and reports the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. The UNTANGLE_BENCH_SCALE environment
// variable (default 0.002) trades fidelity for time; the numbers recorded in
// EXPERIMENTS.md use 0.01.
package untangle_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"untangle/internal/campaign"
	"untangle/internal/checkpoint"
	"untangle/internal/covert"
	"untangle/internal/experiments"
	"untangle/internal/obs"
	"untangle/internal/parallel"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/stats"
	"untangle/internal/telemetry"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

func benchScale() float64 {
	if v := os.Getenv("UNTANGLE_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			return f
		}
	}
	return 0.002
}

// benchJobs sizes the experiment engine's worker pool for the benchmarks:
// UNTANGLE_BENCH_JOBS overrides, default 0 (= GOMAXPROCS). Set 1 to measure
// the legacy sequential engine; results are identical either way.
func benchJobs() int {
	if v := os.Getenv("UNTANGLE_BENCH_JOBS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 0
}

func sensitivityInstructions() uint64 {
	// Scale the steady-state sensitivity runs with the bench scale, with a
	// floor that keeps the classification meaningful.
	n := uint64(150_000_000 * benchScale())
	if n < 600_000 {
		n = 600_000
	}
	return n
}

// reportMixMetrics attaches the Figure 10-style headline metrics.
func reportMixMetrics(b *testing.B, res *experiments.MixResult) {
	b.Helper()
	for _, kind := range []partition.Kind{partition.TimeBased, partition.Untangle, partition.Shared} {
		speed, err := res.SystemSpeedup(kind)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(speed, "speedup-"+kind.String())
	}
	for _, kind := range []partition.Kind{partition.TimeBased, partition.Untangle} {
		leak, err := res.LeakagePerAssessment(kind)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(leak), "bits/assess-"+kind.String())
	}
	mf, err := res.MaintainFraction(partition.Untangle)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(mf, "maintain-frac")
}

// warmRateTables hoists the one-time covert rate-table construction
// (covert.Shared, seconds of compute, cached process-wide) out of the timed
// region. Without it the cost lands in whichever Untangle-running benchmark
// happens to execute first in the process, skewing that one entry.
func warmRateTables(b *testing.B) {
	b.Helper()
	cfg := sim.Scaled(partition.DefaultScheme(partition.Untangle), benchScale())
	if err := cfg.WarmRateTables(); err != nil {
		b.Fatal(err)
	}
}

func benchmarkMixOpts(b *testing.B, mixID int, opts experiments.Options) {
	mix, err := workload.MixByID(mixID)
	if err != nil {
		b.Fatal(err)
	}
	warmRateTables(b)
	b.ResetTimer()
	var res *experiments.MixResult
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunMix(mix, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMixMetrics(b, res)
}

func benchmarkMix(b *testing.B, mixID int) {
	benchmarkMixOpts(b, mixID, experiments.Options{Scale: benchScale(), Jobs: benchJobs()})
}

// Figure 10: the four highlighted mixes.

func BenchmarkFigure10Mix1(b *testing.B) { benchmarkMix(b, 1) }
func BenchmarkFigure10Mix2(b *testing.B) { benchmarkMix(b, 2) }
func BenchmarkFigure10Mix3(b *testing.B) { benchmarkMix(b, 3) }
func BenchmarkFigure10Mix4(b *testing.B) { benchmarkMix(b, 4) }

// Mix 1 on the per-scheme oracle path the fused engine replaced: each of
// the four schemes re-runs the full front end. The ns/op ratio against
// BenchmarkFigure10Mix1 is the fusion speedup docs/PERFORMANCE.md records.
func BenchmarkFigure10Mix1Oracle(b *testing.B) {
	benchmarkMixOpts(b, 1, experiments.Options{
		Scale:         benchScale(),
		Jobs:          benchJobs(),
		DisableFusion: true,
	})
}

// Mix 1 with a warm front-end trace cache: the fused engine replays every
// domain's post-L1 stream (measured run and pressure tail) from disk, so
// the timed region is the four scheme lanes only. The cache is populated
// outside the timer; warm-speedup-x compares against that one untimed cold
// fused pass.
func BenchmarkFigure10Mix1Warm(b *testing.B) {
	st, err := tracecache.NewStore(b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	coldStart := time.Now()
	if _, err := experiments.WarmMixFrontEnds(context.Background(), st, []int{1}, benchScale(), 0, benchJobs()); err != nil {
		b.Fatal(err)
	}
	cold := time.Since(coldStart)
	experiments.SetFrontEndCache(st)
	defer experiments.SetFrontEndCache(nil)

	mix, err := workload.MixByID(1)
	if err != nil {
		b.Fatal(err)
	}
	warmRateTables(b)
	b.ResetTimer()
	var res *experiments.MixResult
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunMix(mix, experiments.Options{Scale: benchScale(), Jobs: benchJobs()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	warm := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(cold.Seconds()/warm.Seconds(), "warm-speedup-x")
	c := st.Counters()
	b.ReportMetric(float64(c.Hits), "cache-hits")
	b.ReportMetric(float64(c.BytesRead)/float64(b.N), "bytes-read/op")
	reportMixMetrics(b, res)
}

// Figures 12-17: the remaining twelve mixes, one sub-benchmark each.
func BenchmarkFigures12to17(b *testing.B) {
	for id := 5; id <= 16; id++ {
		b.Run(fmt.Sprintf("Mix%d", id), func(b *testing.B) { benchmarkMix(b, id) })
	}
}

// Figure 11: the LLC-sensitivity study over all 36 benchmarks.
func BenchmarkFigure11Sensitivity(b *testing.B) {
	var study []experiments.SensitivityResult
	var err error
	for i := 0; i < b.N; i++ {
		study, err = experiments.SensitivityStudy(sensitivityInstructions(), benchJobs())
		if err != nil {
			b.Fatal(err)
		}
	}
	sensitive := 0
	for _, r := range study {
		if r.Sensitive {
			sensitive++
		}
	}
	b.ReportMetric(float64(sensitive), "llc-sensitive")
	b.ReportMetric(float64(len(study)), "benchmarks")
}

// Figure 11 with a warm front-end trace cache: the study replays every
// benchmark's post-L1 event stream from disk instead of re-running the
// generator and private L1. The cache is populated outside the timer; the
// timed region is the warm study only, so the ns/op ratio against
// BenchmarkFigure11Sensitivity is the replay speedup docs/PERFORMANCE.md
// records (also reported here directly as warm-speedup-x against one
// untimed cold pass).
func BenchmarkFigure11SensitivityWarm(b *testing.B) {
	ins := sensitivityInstructions()
	st, err := tracecache.NewStore(b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	coldStart := time.Now()
	if _, err := experiments.WarmFrontEndCache(context.Background(), st, nil, ins, benchJobs()); err != nil {
		b.Fatal(err)
	}
	cold := time.Since(coldStart)
	experiments.SetFrontEndCache(st)
	defer experiments.SetFrontEndCache(nil)

	b.ResetTimer()
	var study []experiments.SensitivityResult
	for i := 0; i < b.N; i++ {
		study, err = experiments.SensitivityStudy(ins, benchJobs())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	warm := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(cold.Seconds()/warm.Seconds(), "warm-speedup-x")
	b.ReportMetric(float64(len(study)), "benchmarks")
	c := st.Counters()
	b.ReportMetric(float64(c.Hits), "cache-hits")
	b.ReportMetric(float64(c.BytesRead)/float64(b.N), "bytes-read/op")
}

// Table 6: average and total leakage for Mixes 1-4 under Time and Untangle.
// The four mixes fan out onto the worker pool; rows come back in mix order.
func BenchmarkTable6Leakage(b *testing.B) {
	warmRateTables(b)
	b.ResetTimer()
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = parallel.Map(context.Background(), 4, benchJobs(),
			func(ctx context.Context, i int) (experiments.Table6Row, error) {
				mix, err := workload.MixByID(i + 1)
				if err != nil {
					return experiments.Table6Row{}, err
				}
				res, err := experiments.RunMixContext(ctx, mix, experiments.Options{
					Scale: benchScale(),
					Kinds: []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle},
					Jobs:  1,
				})
				if err != nil {
					return experiments.Table6Row{}, err
				}
				return res.Table6()
			})
		if err != nil {
			b.Fatal(err)
		}
	}
	var reduction, timeTotal, unTotal float64
	for _, r := range rows {
		reduction += r.ReductionPerAssessment
		timeTotal += r.TimeAvgTotal
		unTotal += r.UntangleAvgTotal
	}
	n := float64(len(rows))
	b.ReportMetric(100*reduction/n, "reduction-%")
	b.ReportMetric(timeTotal/n, "time-total-bits")
	b.ReportMetric(unTotal/n, "untangle-total-bits")
}

// Section 9, active attacker: Untangle without the Maintain optimization.
func BenchmarkActiveAttacker(b *testing.B) {
	warmRateTables(b)
	b.ResetTimer()
	var rates []float64
	for i := 0; i < b.N; i++ {
		var err error
		rates, err = parallel.Map(context.Background(), 4, benchJobs(),
			func(ctx context.Context, i int) (float64, error) {
				mix, err := workload.MixByID(i + 1)
				if err != nil {
					return 0, err
				}
				res, err := experiments.RunMixContext(ctx, mix, experiments.Options{
					Scale:               benchScale(),
					Kinds:               []partition.Kind{partition.Untangle},
					WorstCaseAccounting: true,
					Jobs:                1,
				})
				if err != nil {
					return 0, err
				}
				leak, err := res.LeakagePerAssessment(partition.Untangle)
				if err != nil {
					return 0, err
				}
				return stats.Mean(leak), nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Mean(rates), "bits/assess-worst")
}

// Section 1 motivation: dynamic schemes track a bursty workload's demand
// swings; Static cannot. Reports the bursty workload's IPC per scheme.
func BenchmarkAdaptationBurstyWorkload(b *testing.B) {
	var results []experiments.AdaptationResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = experiments.Adaptation(benchScale(), uint64(550_000_000*benchScale()))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.BurstyIPC, "bursty-ipc-"+r.Kind.String())
	}
}

// Appendix A: the R'max table computation itself.
func BenchmarkRmaxComputation(b *testing.B) {
	cfg := covert.DefaultTableConfig()
	cfg.MaxMaintains = 8
	var tbl *covert.RateTable
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = covert.NewRateTable(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tbl.Entry(0).RatePerSecond, "rmax0-bits/s")
	b.ReportMetric(tbl.Entry(0).BitsPerTransmission, "bits/resize-0")
	b.ReportMetric(tbl.Entry(tbl.Len()-1).BitsPerTransmission, "bits/resize-max")
}

// Ablation: the cooldown Tc sweep (Mechanism 1). Longer cooldowns lower the
// per-resize charge's rate bound.
func BenchmarkAblationCooldown(b *testing.B) {
	for _, tc := range []time.Duration{500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond} {
		b.Run(tc.String(), func(b *testing.B) {
			cfg := covert.TableConfig{
				Unit: tc / 40, Cooldown: tc, DelayWidth: time.Millisecond, MaxMaintains: 0,
			}
			var tbl *covert.RateTable
			var err error
			for i := 0; i < b.N; i++ {
				tbl, err = covert.NewRateTable(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tbl.Entry(0).RatePerSecond, "rmax-bits/s")
		})
	}
}

// Ablation: the end-to-end cooldown trade-off of Section 5.3.2, at the
// simulation level: leakage rate falls with Tc while adaptivity (and hence
// performance headroom) shrinks.
func BenchmarkAblationCooldownEndToEnd(b *testing.B) {
	mix, err := workload.MixByID(1)
	if err != nil {
		b.Fatal(err)
	}
	var points []experiments.CooldownPoint
	for i := 0; i < b.N; i++ {
		points, err = experiments.CooldownSweep(mix, benchScale(), []float64{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.BitsPerSecond, fmt.Sprintf("bits/s-Tc-x%g", p.Multiplier))
		b.ReportMetric(p.Speedup, fmt.Sprintf("speedup-Tc-x%g", p.Multiplier))
	}
}

// Ablation: the random-delay width sweep (Mechanism 2). Wider delays lower
// the rate bound.
func BenchmarkAblationDelayWidth(b *testing.B) {
	for _, w := range []time.Duration{250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond} {
		b.Run(w.String(), func(b *testing.B) {
			cfg := covert.TableConfig{
				Unit: 25 * time.Microsecond, Cooldown: time.Millisecond, DelayWidth: w, MaxMaintains: 0,
			}
			var tbl *covert.RateTable
			var err error
			for i := 0; i < b.N; i++ {
				tbl, err = covert.NewRateTable(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tbl.Entry(0).RatePerSecond, "rmax-bits/s")
		})
	}
}

// Ablation: set partitioning (9 sizes down to 128kB, the paper's choice)
// versus classic way partitioning (whole 1MB ways). Coarser actions shrink
// the Time baseline's per-assessment charge (log2 8 vs log2 9) but waste
// capacity on small working sets.
func BenchmarkAblationPartitionGranularity(b *testing.B) {
	mix, err := workload.MixByID(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, way := range []bool{false, true} {
		name := "set-partitioned"
		if way {
			name = "way-partitioned"
		}
		b.Run(name, func(b *testing.B) {
			var res *experiments.MixResult
			for i := 0; i < b.N; i++ {
				res, err = experiments.RunMix(mix, experiments.Options{
					Scale:          benchScale(),
					Kinds:          []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle},
					WayPartitioned: way,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			speed, err := res.SystemSpeedup(partition.Untangle)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(speed, "speedup")
			leak, _ := res.LeakagePerAssessment(partition.Untangle)
			b.ReportMetric(stats.Mean(leak), "bits/assess")
		})
	}
}

// Guard: the telemetry instrumentation must be effectively free when
// disabled. "disabled" is the default nil-tracer path — every emit site
// costs one nil check and nothing else — and its overhead should stay
// under 2% of an uninstrumented run (the micro-benchmarks in
// internal/telemetry put the check at ~1ns). "nop-sink" additionally
// constructs and emits every event into a discarding sink, bounding the
// fully-enabled instrumentation cost from above. A single scheme runs at
// a time so goroutine scheduling noise does not swamp the comparison.
func BenchmarkTelemetryOverhead(b *testing.B) {
	mix, err := workload.MixByID(1)
	if err != nil {
		b.Fatal(err)
	}
	run := func(opts experiments.Options) time.Duration {
		start := time.Now()
		if _, err := experiments.RunMix(mix, opts); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	kinds := []partition.Kind{partition.Untangle}
	base := experiments.Options{Scale: benchScale(), Kinds: kinds}
	instr := experiments.Options{
		Scale: benchScale(),
		Kinds: kinds,
		TracerFor: func(k partition.Kind) *telemetry.Tracer {
			return telemetry.New(telemetry.NopSink{}, nil, k.String())
		},
		MetricsFor: func(partition.Kind) *telemetry.Registry { return telemetry.NewRegistry() },
	}
	// Interleave the two variants so thermal / scheduling drift hits both.
	var disabled, nop time.Duration
	run(base) // warm caches before measuring
	for i := 0; i < b.N; i++ {
		disabled += run(base)
		nop += run(instr)
	}
	b.ReportMetric(disabled.Seconds()/float64(b.N), "s/run-disabled")
	b.ReportMetric(nop.Seconds()/float64(b.N), "s/run-nop-sink")
	b.ReportMetric(100*(nop.Seconds()-disabled.Seconds())/disabled.Seconds(), "overhead-%")
}

// Guard: -checkpoint must not tax the campaign it protects. The journal
// appends one fsynced JSONL line per completed unit — 36 for the Figure 11
// study — so its cost is a fixed number of small writes regardless of
// scale, and must stay under 2% of the study itself. Each iteration opens
// a fresh journal (resuming from a populated one would skip the work and
// measure nothing).
func BenchmarkCheckpointJournalOverhead(b *testing.B) {
	dir := b.TempDir()
	ins := sensitivityInstructions()
	study := func(j *checkpoint.Journal) time.Duration {
		start := time.Now()
		if _, err := experiments.SensitivityStudyCheckpointed(context.Background(), ins, benchJobs(), j); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	study(nil) // warm caches before measuring
	var plain, journaled time.Duration
	for i := 0; i < b.N; i++ {
		plain += study(nil)
		j, err := checkpoint.Open(filepath.Join(dir, fmt.Sprintf("bench-%d.ckpt", i)), checkpoint.Fingerprint{
			Instructions: ins,
			Units:        "bench",
			ParamsTag:    experiments.ParamsFingerprint(),
		})
		if err != nil {
			b.Fatal(err)
		}
		journaled += study(j)
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plain.Seconds()/float64(b.N), "s/run-plain")
	b.ReportMetric(journaled.Seconds()/float64(b.N), "s/run-journaled")
	b.ReportMetric(100*(journaled.Seconds()-plain.Seconds())/plain.Seconds(), "overhead-%")
}

// Guard: routing a campaign through the resident service (-dlq / -serve)
// must not tax it. Both variants run the journaled Figure 11 study; the
// "queued" one pushes its 36 units through the bounded priority queue onto
// the service's worker pool — submit, dequeue, classify, settle — instead
// of calling the study directly. The machinery handles a few dozen units
// per campaign, so its cost is fixed and must stay under 2% of the study.
// Variants interleave so thermal / scheduling drift hits both.
func BenchmarkCampaignQueueOverhead(b *testing.B) {
	dir := b.TempDir()
	ins := sensitivityInstructions()
	open := func(name string) *checkpoint.Journal {
		j, err := checkpoint.Open(filepath.Join(dir, name), checkpoint.Fingerprint{
			Instructions: ins,
			Units:        "bench",
			ParamsTag:    experiments.ParamsFingerprint(),
		})
		if err != nil {
			b.Fatal(err)
		}
		return j
	}
	direct := func(name string) time.Duration {
		j := open(name)
		defer j.Close()
		start := time.Now()
		if _, err := experiments.SensitivityStudyCheckpointed(context.Background(), ins, benchJobs(), j); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	names := experiments.SensitivityOrder()
	keys := make([]string, len(names))
	for i, name := range names {
		keys[i] = experiments.SensitivityKey(name)
	}
	queued := func(name string) time.Duration {
		j := open(name)
		defer j.Close()
		svc := campaign.New(campaign.Options{Workers: benchJobs()})
		defer svc.Drain(context.Background())
		start := time.Now()
		job, err := svc.Submit(campaign.JobSpec{
			ID:     name,
			Phases: []campaign.PhaseSpec{{Name: "sensitivity", Keys: keys}},
			Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
				return experiments.RunSensitivityUnit(ctx, strings.TrimPrefix(key, "sens/"), ins)
			},
			Journal: j,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	direct("warm.ckpt") // warm caches before measuring
	var plain, svcd time.Duration
	for i := 0; i < b.N; i++ {
		plain += direct(fmt.Sprintf("direct-%d.ckpt", i))
		svcd += queued(fmt.Sprintf("queued-%d.ckpt", i))
	}
	b.ReportMetric(plain.Seconds()/float64(b.N), "s/run-direct")
	b.ReportMetric(svcd.Seconds()/float64(b.N), "s/run-queued")
	b.ReportMetric(100*(svcd.Seconds()-plain.Seconds())/plain.Seconds(), "overhead-%")
}

// Guard: the operational observability layer (internal/obs) must be
// effectively free when disabled and under 2% when fully enabled.
// "disabled" is the default: no unit observer installed, so every
// experiments.ObserveUnit site costs one atomic load. "enabled" installs a
// complete obs.Campaign — span tracer into a discarding writer, progress
// tracking, unit-latency histograms, pool gauges — the same wiring the
// -http/-obs-trace flags produce, minus the HTTP listener (which does no
// per-unit work). The Figure 11 study is the workload: 36 units plus their
// engine-pass sub-spans per run.
func BenchmarkObsOverhead(b *testing.B) {
	ins := sensitivityInstructions()
	study := func() time.Duration {
		start := time.Now()
		if _, err := experiments.SensitivityStudyCheckpointed(context.Background(), ins, benchJobs(), nil); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	observed := func() time.Duration {
		campaign := obs.NewCampaign("bench", obs.NewTracer(io.Discard), obs.NewProgress(), telemetry.NewRegistry())
		campaign.Phase("sensitivity", 36)
		experiments.SetUnitObserver(campaign.Unit)
		defer func() {
			experiments.SetUnitObserver(nil)
			campaign.End(nil)
		}()
		return study()
	}
	study() // warm caches before measuring
	var disabled, enabled time.Duration
	for i := 0; i < b.N; i++ {
		disabled += study()
		enabled += observed()
	}
	b.ReportMetric(disabled.Seconds()/float64(b.N), "s/run-disabled")
	b.ReportMetric(enabled.Seconds()/float64(b.N), "s/run-observed")
	b.ReportMetric(100*(enabled.Seconds()-disabled.Seconds())/disabled.Seconds(), "overhead-%")
}

// Ablation: annotations off (Edge 1 of Figure 2 restored). Performance is
// essentially unchanged, but the action sequence becomes secret-dependent —
// reported here through the count of visible actions, which grows when
// secret demand perturbs the metric.
func BenchmarkAblationAnnotations(b *testing.B) {
	mix, err := workload.MixByID(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, annotated := range []bool{true, false} {
		name := "annotated"
		if !annotated {
			name = "unannotated"
		}
		b.Run(name, func(b *testing.B) {
			var res *experiments.MixResult
			for i := 0; i < b.N; i++ {
				res, err = experiments.RunMix(mix, experiments.Options{
					Scale:              benchScale(),
					Kinds:              []partition.Kind{partition.Static, partition.Untangle},
					DisableAnnotations: !annotated,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			speed, err := res.SystemSpeedup(partition.Untangle)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(speed, "speedup")
			mf, _ := res.MaintainFraction(partition.Untangle)
			b.ReportMetric(mf, "maintain-frac")
		})
	}
}
