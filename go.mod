module untangle

go 1.22
