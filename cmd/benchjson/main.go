// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark baselines can be committed and diffed
// across PRs without external tooling (no benchstat dependency).
//
// Each benchmark becomes one entry keyed by its name (the -cpu/GOMAXPROCS
// suffix stripped) holding the iteration count, ns/op, the derived ops/s
// (for the cache microbenchmarks this is accesses per second), and every
// custom metric the benchmark reported via b.ReportMetric. Repeated runs of
// the same benchmark (-count > 1) are averaged. Non-benchmark lines are
// ignored, so the full `go test` output can be piped in unfiltered.
//
// With -compare, benchjson instead reads two such JSON baselines and prints
// a per-benchmark ns/op delta table (old → new, absolute and percent), so
// PRs can show before/after numbers without benchstat. Benchmarks present
// in only one file are listed as added/removed. Adding -threshold N turns
// the comparison into a gate: any benchmark more than N percent slower in
// the new baseline is flagged in the table and makes benchjson exit
// nonzero, so CI can fail a PR on a real regression while tolerating noise
// below the threshold.
//
// Usage:
//
//	go test -run '^$' -bench . ./... | benchjson > BENCH.json
//	benchjson -compare BENCH_PR2.json BENCH_PR3.json
//	benchjson -compare -threshold 10 BENCH_PR5.json BENCH_PR6.json  # gate at +10%
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is the JSON record for one benchmark.
type Entry struct {
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	OpsPerSec  float64            `json:"ops_per_sec"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	runs       int
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	compare := flag.Bool("compare", false, "compare two baseline JSON files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0, "with -compare: exit nonzero when any benchmark regresses by more than this percent (0 = report only)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		if *threshold < 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -threshold must be >= 0")
			os.Exit(2)
		}
		regressed, err := compareBaselines(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if *threshold > 0 && len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.1f%%: %s\n",
				len(regressed), *threshold, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}
	if *threshold != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -threshold only applies with -compare")
		os.Exit(2)
	}
	entries := map[string]*Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		e := entries[m[1]]
		if e == nil {
			e = &Entry{}
			entries[m[1]] = e
		}
		e.runs++
		e.Iterations += iters
		for unit, value := range parseMeasurements(m[3]) {
			switch unit {
			case "ns/op":
				e.NsPerOp += value
			case "B/op", "allocs/op":
				// Not requested; skip to keep the baseline focused.
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] += value
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	for _, e := range entries {
		e.Iterations /= e.runs
		e.NsPerOp /= float64(e.runs)
		for unit := range e.Metrics {
			e.Metrics[unit] /= float64(e.runs)
		}
		if e.NsPerOp > 0 {
			e.OpsPerSec = 1e9 / e.NsPerOp
		}
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	// Emit in sorted order by hand: encoding/json sorts map keys too, but
	// an explicit ordered document keeps the diff format obvious.
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "{")
	for i, name := range names {
		b, err := json.Marshal(entries[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(out, "  %q: %s%s\n", name, b, comma)
	}
	fmt.Fprintln(out, "}")
}

// compareBaselines writes a per-benchmark ns/op delta table between two
// baseline files previously produced by this command, and returns the names
// of benchmarks whose ns/op regressed by more than threshold percent
// (threshold 0 gates nothing). Added and removed benchmarks never count as
// regressions — a gate must not fail a PR for introducing a benchmark.
func compareBaselines(out io.Writer, oldPath, newPath string, threshold float64) ([]string, error) {
	load := func(path string) (map[string]Entry, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var m map[string]Entry
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return m, nil
	}
	oldE, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newE, err := load(newPath)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for n := range oldE {
		names[n] = true
	}
	for n := range newE {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	var regressed []string
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintf(w, "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, n := range sorted {
		o, haveOld := oldE[n]
		e, haveNew := newE[n]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%-40s %14s %14s %9s\n", n, "-", humanNs(e.NsPerOp), "added")
		case !haveNew:
			fmt.Fprintf(w, "%-40s %14s %14s %9s\n", n, humanNs(o.NsPerOp), "-", "removed")
		case o.NsPerOp <= 0:
			fmt.Fprintf(w, "%-40s %14s %14s %9s\n", n, humanNs(o.NsPerOp), humanNs(e.NsPerOp), "?")
		default:
			pct := (e.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			mark := ""
			if threshold > 0 && pct > threshold {
				regressed = append(regressed, n)
				mark = "  REGRESSED"
			}
			fmt.Fprintf(w, "%-40s %14s %14s %+8.1f%%%s\n", n, humanNs(o.NsPerOp), humanNs(e.NsPerOp), pct, mark)
		}
	}
	// Summary: the geometric mean of the per-benchmark ns/op ratios (the
	// scale-free aggregate — a 2x speedup on a 1s benchmark and a 2x
	// slowdown on a 1ms one cancel out) over benchmarks present in both
	// files, plus the headcount either side of it.
	var logSum float64
	common, faster, slower := 0, 0, 0
	for _, n := range sorted {
		o, haveOld := oldE[n]
		e, haveNew := newE[n]
		if !haveOld || !haveNew || o.NsPerOp <= 0 || e.NsPerOp <= 0 {
			continue
		}
		logSum += math.Log(e.NsPerOp / o.NsPerOp)
		common++
		switch {
		case e.NsPerOp < o.NsPerOp:
			faster++
		case e.NsPerOp > o.NsPerOp:
			slower++
		}
	}
	if common > 0 {
		pct := (math.Exp(logSum/float64(common)) - 1) * 100
		fmt.Fprintf(w, "%-40s %14s %14s %+8.1f%%\n",
			fmt.Sprintf("geomean (%d common)", common), "", "", pct)
		fmt.Fprintf(w, "%d improvement(s), %d regression(s)\n", faster, slower)
	}
	return regressed, nil
}

// humanNs renders a ns/op value compactly: nanoseconds for the
// microbenchmarks, seconds for the end-to-end experiment benchmarks.
func humanNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fns", ns)
	}
}

// parseMeasurements splits the tail of a benchmark line — alternating
// value/unit pairs — into unit → value.
func parseMeasurements(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		out[fields[i+1]] = v
	}
	return out
}
