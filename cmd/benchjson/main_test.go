package main

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaselinesThreshold(t *testing.T) {
	oldPath := writeBaseline(t, "old.json", `{
  "BenchmarkFast": {"iterations": 1000, "ns_per_op": 100, "ops_per_sec": 1e7},
  "BenchmarkSlow": {"iterations": 10, "ns_per_op": 1000000, "ops_per_sec": 1000},
  "BenchmarkGone": {"iterations": 10, "ns_per_op": 50, "ops_per_sec": 2e7}
}`)
	newPath := writeBaseline(t, "new.json", `{
  "BenchmarkFast": {"iterations": 1000, "ns_per_op": 125, "ops_per_sec": 8e6},
  "BenchmarkSlow": {"iterations": 10, "ns_per_op": 1020000, "ops_per_sec": 980},
  "BenchmarkNew": {"iterations": 10, "ns_per_op": 75, "ops_per_sec": 1.3e7}
}`)

	// Threshold 10%: only Fast (+25%) regresses; Slow (+2%) is noise, and
	// the added/removed benchmarks are not regressions.
	var out strings.Builder
	regressed, err := compareBaselines(&out, oldPath, newPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(regressed, []string{"BenchmarkFast"}) {
		t.Errorf("regressed = %v, want [BenchmarkFast]", regressed)
	}
	table := out.String()
	for _, want := range []string{"BenchmarkFast", "REGRESSED", "added", "removed", "+25.0%"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if strings.Count(table, "REGRESSED") != 1 {
		t.Errorf("want exactly one REGRESSED mark:\n%s", table)
	}

	// Threshold 0: report-only, nothing flagged.
	out.Reset()
	regressed, err = compareBaselines(&out, oldPath, newPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Errorf("threshold 0 flagged %v", regressed)
	}
	if strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("threshold 0 printed a REGRESSED mark:\n%s", out.String())
	}

	// A generous threshold tolerates the +25%.
	out.Reset()
	regressed, err = compareBaselines(&out, oldPath, newPath, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Errorf("threshold 30 flagged %v", regressed)
	}
}

func TestCompareBaselinesGeomeanSummary(t *testing.T) {
	oldPath := writeBaseline(t, "old.json", `{
  "BenchmarkA": {"iterations": 10, "ns_per_op": 100},
  "BenchmarkB": {"iterations": 10, "ns_per_op": 1000},
  "BenchmarkGone": {"iterations": 10, "ns_per_op": 50}
}`)
	newPath := writeBaseline(t, "new.json", `{
  "BenchmarkA": {"iterations": 10, "ns_per_op": 50},
  "BenchmarkB": {"iterations": 10, "ns_per_op": 2000},
  "BenchmarkNew": {"iterations": 10, "ns_per_op": 75}
}`)
	var out strings.Builder
	if _, err := compareBaselines(&out, oldPath, newPath, 0); err != nil {
		t.Fatal(err)
	}
	table := out.String()
	// A halved (ratio 0.5) and B doubled (ratio 2.0): the geometric mean is
	// exactly 1.0, and added/removed entries stay out of it.
	for _, want := range []string{"geomean (2 common)", "+0.0%", "1 improvement(s), 1 regression(s)"} {
		if !strings.Contains(table, want) {
			t.Errorf("summary missing %q:\n%s", want, table)
		}
	}

	// A summary over one pair reports that pair's delta.
	single := writeBaseline(t, "single-old.json", `{"BenchmarkA": {"iterations": 10, "ns_per_op": 100}}`)
	singleNew := writeBaseline(t, "single-new.json", `{"BenchmarkA": {"iterations": 10, "ns_per_op": 150}}`)
	out.Reset()
	if _, err := compareBaselines(&out, single, singleNew, 0); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "geomean (1 common)") || !strings.Contains(got, "+50.0%") {
		t.Errorf("single-pair summary wrong:\n%s", got)
	}
}

func TestCompareBaselinesBadFiles(t *testing.T) {
	good := writeBaseline(t, "good.json", `{"BenchmarkX": {"iterations": 1, "ns_per_op": 1, "ops_per_sec": 1e9}}`)
	bad := writeBaseline(t, "bad.json", `not json`)
	var out strings.Builder
	if _, err := compareBaselines(&out, good, bad, 0); err == nil {
		t.Error("corrupt new baseline accepted")
	}
	if _, err := compareBaselines(&out, filepath.Join(t.TempDir(), "missing.json"), good, 0); err == nil {
		t.Error("missing old baseline accepted")
	}
}

func TestParseMeasurements(t *testing.T) {
	m := parseMeasurements("123.4 ns/op 5 allocs/op 0.95 ipc")
	if m["ns/op"] != 123.4 || m["allocs/op"] != 5 || m["ipc"] != 0.95 {
		t.Errorf("m = %v", m)
	}
}
