// Command scenario runs a JSON-defined experiment: any mixture of synthetic
// benchmarks, crypto+SPEC pairs, recorded traces, and mini-language victim
// programs under a chosen partitioning scheme (see internal/scenario for
// the format).
//
// Usage:
//
//	scenario experiment.json
//	scenario -json out.json experiment.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"untangle/internal/fsutil"
	"untangle/internal/obs"
	"untangle/internal/report"
	"untangle/internal/scenario"
	"untangle/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenario: ")
	jsonOut := flag.String("json", "", "also write the full result as JSON")
	httpAddr := flag.String("http", "", "serve /metrics, /healthz and pprof on this address while the scenario runs")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *httpAddr != "" {
		// Pool gauges and pprof for long-running scenario files; wall-clock
		// only, the printed result is unaffected.
		reg := telemetry.NewRegistry()
		campaign := obs.NewCampaign("scenario", nil, obs.NewProgress(), reg)
		defer campaign.End(nil)
		srv, err := obs.StartServer(*httpAddr, campaign.Progress,
			obs.NamedRegistry{Namespace: "untangle", Registry: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Shutdown()
		log.Printf("observability: http://%s/{metrics,healthz,debug/pprof}", srv.Addr())
	}
	sc, err := scenario.Load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	s, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme %s, %d domains, %v simulated\n\n", res.Scheme.Kind, len(res.Domains), res.Duration)
	labels := make([]string, len(res.Domains))
	ipcs := make([]float64, len(res.Domains))
	for i, d := range res.Domains {
		labels[i], ipcs[i] = d.Name, d.IPC
		fmt.Printf("%-20s IPC %5.2f  instr %-10d assessments %-4d visible %-3d leakage %7.2f bits%s\n",
			d.Name, d.IPC, d.Instructions, d.Leakage.Assessments, d.Leakage.Visible,
			d.Leakage.TotalBits, frozenMark(d.Leakage.Frozen))
	}
	fmt.Println("\nIPC:")
	fmt.Print(report.Bars(labels, ipcs, 40, 0))

	// Timelines: partition size and IPC over the measured region.
	for _, d := range res.Domains {
		if len(d.PartitionSamples) == 0 {
			continue
		}
		sizes := make([]float64, len(d.PartitionSamples))
		for i, v := range d.PartitionSamples {
			sizes[i] = float64(v)
		}
		fmt.Printf("\n%-20s partition %s\n", d.Name, report.Sparkline(report.Downsample(sizes, 60)))
		fmt.Printf("%-20s ipc       %s\n", "", report.Sparkline(report.Downsample(d.IPCSamples, 60)))
	}

	if *jsonOut != "" {
		data, err := report.MarshalJSON(res, 100*time.Microsecond)
		if err != nil {
			log.Fatal(err)
		}
		if err := fsutil.WriteFileAtomic(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonOut)
	}
}

func frozenMark(frozen bool) string {
	if frozen {
		return "  [FROZEN]"
	}
	return ""
}
