// Command annotate is the victim-program toolchain (Sections 2.1, 4, 6.5):
// it parses a program written in the mini-language, runs the taint analysis
// that derives the Untangle annotations, reports what was found, and can
// compile the program with concrete inputs into an annotated binary trace
// ready for the simulator.
//
// Usage:
//
//	annotate victim.unt                           # analyze, print the report
//	annotate -input secret=1 victim.unt           # also execute and summarize the stream
//	annotate -input secret=1 -out victim.trace victim.unt
//
// Program syntax (see internal/lang):
//
//	array arr[32768]        # 64-byte elements (x8 etc. overrides)
//	secret key              # taint source
//	param  n
//	if key % 2 { for i in 0..32768 { load x = arr[i] } }
//	spin 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"untangle/internal/fsutil"
	"untangle/internal/isa"
	"untangle/internal/lang"
)

type inputFlags map[string]int64

func (f inputFlags) String() string { return fmt.Sprint(map[string]int64(f)) }

func (f inputFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return err
	}
	f[name] = v
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("annotate: ")
	inputs := inputFlags{}
	var (
		out    = flag.String("out", "", "compile to this annotated trace file (requires -input for every parameter)")
		budget = flag.Int64("max-instructions", 50_000_000, "interpreter instruction budget")
	)
	flag.Var(inputs, "input", "parameter value as name=value (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := lang.Analyze(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d arrays, %d parameters, analysis results:\n", flag.Arg(0), len(prog.Arrays), len(prog.Params))
	for _, p := range prog.Params {
		kind := "public parameter"
		if p.Secret {
			kind = "SECRET parameter (taint source)"
		}
		fmt.Printf("  %-16s %s\n", p.Name, kind)
	}
	var names []string
	for v := range analysis.VarTaint {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		if isParam(prog, v) {
			continue
		}
		fmt.Printf("  %-16s scalar: %s\n", v, taintWord(analysis.VarTaint[v]))
	}
	for _, a := range prog.Arrays {
		fmt.Printf("  %-16s array:  %s\n", a.Name, taintWord(analysis.ArrayTaint[a.Name]))
	}

	if len(inputs) == 0 {
		return
	}
	exec, err := lang.NewExec(prog, inputs, *budget)
	if err != nil {
		log.Fatal(err)
	}
	var ops, instr, mem, secretUse, secretProg uint64
	buf := make([]isa.Op, 4096)
	var w *isa.TraceWriter
	var f *fsutil.AtomicFile
	if *out != "" {
		// Atomic output: only a completely-compiled trace is published at
		// the destination path (crash-safety, see internal/fsutil).
		f, err = fsutil.CreateAtomic(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w, err = isa.NewTraceWriter(f)
		if err != nil {
			log.Fatal(err)
		}
	}
	for {
		n := exec.Fill(buf)
		if n == 0 {
			break
		}
		for _, op := range buf[:n] {
			ops++
			instr += op.Instructions()
			if op.IsMem() {
				mem++
			}
			if op.SecretUse() {
				secretUse++
			}
			if op.SecretProgress() {
				secretProg++
			}
			if w != nil {
				if err := w.WriteOp(op); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Commit(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	fmt.Printf("\nexecution with %v:\n", inputs)
	fmt.Printf("  retired instructions  %d\n", instr)
	fmt.Printf("  memory accesses       %d\n", mem)
	fmt.Printf("  usage-excluded ops    %d (FlagSecretUse)\n", secretUse)
	fmt.Printf("  progress-excluded ops %d (FlagSecretProgress)\n", secretProg)
}

func isParam(p *lang.Program, name string) bool {
	for _, prm := range p.Params {
		if prm.Name == name {
			return true
		}
	}
	return false
}

func taintWord(t lang.Taint) string {
	if t {
		return "SECRET"
	}
	return "public"
}
