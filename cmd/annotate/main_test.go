package main

import "testing"

func TestInputFlags(t *testing.T) {
	f := inputFlags{}
	if err := f.Set("key=42"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("n=-3"); err != nil {
		t.Fatal(err)
	}
	if f["key"] != 42 || f["n"] != -3 {
		t.Errorf("flags = %v", f)
	}
	if err := f.Set("noequals"); err == nil {
		t.Error("missing '=' accepted")
	}
	if err := f.Set("k=notanumber"); err == nil {
		t.Error("bad value accepted")
	}
	if f.String() == "" {
		t.Error("String() empty")
	}
}
