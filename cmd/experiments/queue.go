// Dead-letter campaign execution: -dlq (and -replay) route the campaign's
// units through the resident campaign service (internal/campaign) instead
// of the raw worker pool. The phase structure is unchanged — sensitivity
// units, then mix units — but a unit that exhausts its retries or panics is
// written to the checkpoint journal's dead-letter section and the campaign
// completes degraded, reporting the dead count in its manifest. A later
// -replay run re-drives exactly the dead keys; once they succeed, the
// journal and the final outputs are byte-identical to a never-poisoned
// run's (TestDeadLetterCampaignEquivalence).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"untangle/internal/campaign"
	"untangle/internal/checkpoint"
	"untangle/internal/experiments"
)

// drainTimeout bounds the owned service's shutdown: in-flight units at
// smoke scale settle in seconds; a minute means a wedged unit surfaces as
// a drain error instead of a hang.
const drainTimeout = time.Minute

// queueCampaign drives a campaign through a campaign.Service. In -dlq mode
// run builds a private service and drains it on exit; in serve mode the
// resident service is shared across campaigns and cfg.jobPrefix namespaces
// this campaign's job IDs on it.
type queueCampaign struct {
	cfg     config
	journal *checkpoint.Journal
	svc     *campaign.Service
	owned   bool // run() built the service and must drain it

	mu    sync.Mutex
	study []experiments.SensitivityResult // set after the sensitivity phase
}

func newQueueCampaign(cfg config, journal *checkpoint.Journal) (*queueCampaign, error) {
	if journal == nil {
		return nil, errors.New("-dlq requires -checkpoint (the journal is the dead-letter store)")
	}
	qc := &queueCampaign{cfg: cfg, journal: journal, svc: cfg.service}
	if qc.svc == nil {
		qc.svc = campaign.New(campaign.Options{
			Workers: cfg.jobs,
			Logf:    log.Printf,
		})
		qc.owned = true
	}
	return qc, nil
}

// close drains an owned service; a shared one outlives this campaign.
func (qc *queueCampaign) close() {
	if !qc.owned {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := qc.svc.Drain(ctx); err != nil {
		log.Printf("campaign service: %v", err)
	}
}

// exec runs one unit by key — the same dispatch a shard worker uses, so a
// unit's journal value is byte-identical however it executed. Retries live
// inside the executors; by the time an error escapes here it is terminal
// and the service dead-letters it.
func (qc *queueCampaign) exec(ctx context.Context, key string) (json.RawMessage, error) {
	switch {
	case strings.HasPrefix(key, "sens/"):
		return experiments.RunSensitivityUnit(ctx, strings.TrimPrefix(key, "sens/"), qc.cfg.sensIns)
	case strings.HasPrefix(key, "mix/"):
		id, err := strconv.Atoi(strings.TrimPrefix(key, "mix/"))
		if err != nil {
			return nil, fmt.Errorf("bad mix key %q", key)
		}
		qc.mu.Lock()
		study := qc.study
		qc.mu.Unlock()
		sv, err := runMixUnit(ctx, qc.cfg, study, id, 1)
		if err != nil {
			return nil, err
		}
		if qc.cfg.active && !sv.HaveActive {
			// Cancellation landed between the main run and the active
			// rerun; journaling the truncated unit would poison every
			// future resume.
			return nil, fmt.Errorf("mix %d interrupted before the active-attacker rerun", id)
		}
		return json.Marshal(sv)
	}
	return nil, fmt.Errorf("unknown unit key %q", key)
}

// observe opens a unit's observation span: through the serve-mode hook when
// one is set, else through the process-wide observer the in-process run
// installed (startObs) — the same names the sequential path reports.
func (qc *queueCampaign) observe(phase, key string) func(outcome string, err error) {
	if qc.cfg.observe != nil {
		return qc.cfg.observe(phase, key)
	}
	p, unit := obsUnitName(key)
	return experiments.ObserveUnit(p, unit)
}

// runJob submits one single-phase job and waits for it, mapping the
// service's terminal states onto the campaign's error conventions: nil for
// completed (even degraded), campaign.ErrInterrupted for a drain, the
// context's error for a cancellation.
func (qc *queueCampaign) runJob(ctx context.Context, id, phase string, keys []string) error {
	job, err := qc.svc.Submit(campaign.JobSpec{
		ID:         qc.cfg.jobPrefix + id,
		Priority:   qc.cfg.priority,
		Phases:     []campaign.PhaseSpec{{Name: phase, Keys: keys}},
		Exec:       qc.exec,
		Journal:    qc.journal,
		ReplayDead: qc.cfg.replay,
		Observe:    qc.observe,
		PostRecord: qc.cfg.unitHook,
	})
	if err != nil {
		if errors.Is(err, campaign.ErrDraining) {
			// The service is shutting down under us; the campaign is
			// interrupted, resumable from its journal.
			return campaign.ErrInterrupted
		}
		return err
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		job.Cancel()
		<-job.Done()
		return ctx.Err()
	}
	switch job.Status().State {
	case campaign.StateFailed:
		return job.Err()
	case campaign.StateCanceled:
		return context.Canceled
	case campaign.StateInterrupted:
		return campaign.ErrInterrupted
	}
	return nil
}

// sensitivityStudy runs the Figure 11 units through the service and
// assembles the study from the journal in canonical benchmark order — a
// dead-lettered benchmark leaves a zero row, same as an interrupt, so the
// figure renders degraded rather than failing.
func (qc *queueCampaign) sensitivityStudy(ctx context.Context) ([]experiments.SensitivityResult, error) {
	names := experiments.SensitivityOrder()
	keys := make([]string, len(names))
	for i, name := range names {
		keys[i] = experiments.SensitivityKey(name)
	}
	runErr := qc.runJob(ctx, "sens", "sensitivity", keys)
	study := make([]experiments.SensitivityResult, len(names))
	for i, key := range keys {
		var raw json.RawMessage
		ok, err := qc.journal.Lookup(key, &raw)
		if err != nil {
			return study, fmt.Errorf("checkpoint %s: %w", key, err)
		}
		if !ok {
			continue // dead-lettered or interrupted: zero row
		}
		if study[i], err = experiments.DecodeSensitivityUnit(raw); err != nil {
			return study, fmt.Errorf("checkpoint %s: %w", key, err)
		}
	}
	qc.mu.Lock()
	qc.study = study
	qc.mu.Unlock()
	return study, runErr
}

// runMixes runs the mix units through the service and collects each mix's
// journaled outcome by index — nil where the unit dead-lettered or was
// abandoned, which the report skips, exactly like an interrupt.
func (qc *queueCampaign) runMixes(ctx context.Context, study []experiments.SensitivityResult) ([]*savedMix, error) {
	qc.mu.Lock()
	qc.study = study
	qc.mu.Unlock()
	keys := make([]string, len(qc.cfg.ids))
	for i, id := range qc.cfg.ids {
		keys[i] = mixKey(id)
	}
	runErr := qc.runJob(ctx, "mix", "mix", keys)
	outcomes := make([]*savedMix, len(qc.cfg.ids))
	for i, key := range keys {
		var sv savedMix
		ok, err := qc.journal.Lookup(key, &sv)
		if err != nil {
			return outcomes, fmt.Errorf("checkpoint %s: %w", key, err)
		}
		if ok {
			outcomes[i] = &sv
		}
	}
	return outcomes, runErr
}
