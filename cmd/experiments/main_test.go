package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"untangle/internal/experiments"
	"untangle/internal/faultinject"
)

func TestParseMixes(t *testing.T) {
	ids, err := parseMixes("")
	if err != nil || len(ids) != 16 {
		t.Fatalf("default = %v, %v", ids, err)
	}
	ids, err = parseMixes("1, 4,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 4 || ids[2] != 16 {
		t.Errorf("ids = %v", ids)
	}
	if _, err := parseMixes("1,x"); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := parseMixes("17"); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := parseMixes("0"); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestValidateConfig(t *testing.T) {
	base := config{scale: 0.01}
	if err := base.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		cfg  config
		want string
	}{
		{"zero scale", config{scale: 0}, "-scale"},
		{"negative scale", config{scale: -1}, "-scale"},
		{"scale above 1", config{scale: 1.5}, "-scale"},
		{"negative jobs", config{scale: 0.01, jobs: -2}, "-jobs"},
		{"negative shards", config{scale: 0.01, shards: -1}, "-shards"},
		{"shards without checkpoint", config{scale: 0.01, shards: 4}, "-checkpoint"},
	} {
		err := tc.cfg.validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}
}

// equivalenceConfig is the smallest campaign that exercises every unit kind:
// the sensitivity study, two mixes, the active-attacker reruns, and a
// telemetry stream.
func equivalenceConfig(dir string) config {
	return config{
		scale:    0.0002,
		ids:      []int{1, 2},
		sensIns:  20_000,
		jobs:     1, // deterministic unit order, so the kill point is exact
		active:   true,
		traced:   true,
		outPath:  filepath.Join(dir, "report.txt"),
		telePath: filepath.Join(dir, "trace.jsonl"),
	}
}

// campaign runs cfg to completion and returns the report and telemetry
// bytes it committed.
func runCampaignFiles(t *testing.T, ctx context.Context, cfg config) (report, trace []byte) {
	t.Helper()
	if err := run(ctx, cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	report, err := os.ReadFile(cfg.outPath)
	if err != nil {
		t.Fatal(err)
	}
	trace, err = os.ReadFile(cfg.telePath)
	if err != nil {
		t.Fatal(err)
	}
	return report, trace
}

// The headline robustness guarantee: kill the campaign at unit k, resume
// from the checkpoint, and the final report and telemetry trace are
// byte-identical to a never-interrupted run's. Exercised for a kill inside
// the sensitivity study and a kill between mix units.
func TestCheckpointResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five small campaigns")
	}
	freshReport, freshTrace := runCampaignFiles(t, context.Background(), equivalenceConfig(t.TempDir()))

	t.Run("kill-in-sensitivity-study", func(t *testing.T) {
		cfg := equivalenceConfig(t.TempDir())
		cfg.ckptPath = filepath.Join(filepath.Dir(cfg.outPath), "run.ckpt")

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		inj := faultinject.CancelAt(40, cancel) // lands mid-study at this budget
		experiments.SetEngineChunkHook(inj.Fire)
		err := run(ctx, cfg, io.Discard)
		experiments.SetEngineChunkHook(nil)
		if err != nil {
			t.Fatalf("interrupted run did not exit cleanly: %v", err)
		}
		partial, err := os.ReadFile(cfg.outPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(partial, []byte("0/2 mixes")) {
			t.Fatalf("kill point missed the study; interrupted manifest:\n%s", partial)
		}

		gotReport, gotTrace := runCampaignFiles(t, context.Background(), cfg)
		if !bytes.Equal(gotReport, freshReport) {
			t.Errorf("resumed report differs from fresh run (%d vs %d bytes)", len(gotReport), len(freshReport))
		}
		if !bytes.Equal(gotTrace, freshTrace) {
			t.Errorf("resumed telemetry differs from fresh run (%d vs %d bytes)", len(gotTrace), len(freshTrace))
		}
	})

	t.Run("kill-in-mix-phase", func(t *testing.T) {
		cfg := equivalenceConfig(t.TempDir())
		cfg.ckptPath = filepath.Join(filepath.Dir(cfg.outPath), "run.ckpt")

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg.unitHook = func(key string) {
			if strings.HasPrefix(key, "mix/") {
				cancel() // first completed mix "crashes" the campaign
			}
		}
		if err := run(ctx, cfg, io.Discard); err != nil {
			t.Fatalf("interrupted run did not exit cleanly: %v", err)
		}
		partial, err := os.ReadFile(cfg.outPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(partial, []byte("1/2 mixes")) {
			t.Fatalf("kill point missed the mix phase; interrupted manifest:\n%s", partial)
		}

		cfg.unitHook = nil
		gotReport, gotTrace := runCampaignFiles(t, context.Background(), cfg)
		if !bytes.Equal(gotReport, freshReport) {
			t.Errorf("resumed report differs from fresh run (%d vs %d bytes)", len(gotReport), len(freshReport))
		}
		if !bytes.Equal(gotTrace, freshTrace) {
			t.Errorf("resumed telemetry differs from fresh run (%d vs %d bytes)", len(gotTrace), len(freshTrace))
		}
	})
}

// The fused mix engine must be invisible at the campaign level: the -out
// and -telemetry files of a default campaign byte-equal the -oracle-mixes
// campaign's, cold, through a populated and a warm front-end cache, and
// across a checkpointed kill that lands inside a mix front-end.
func TestMixFusionCampaignOutputsMatchOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six small campaigns")
	}
	// sensIns 0 drops the sensitivity study: the campaign is mix units and
	// their active-attacker reruns, so every byte under test flows through
	// the mix path.
	oracleCfg := equivalenceConfig(t.TempDir())
	oracleCfg.sensIns = 0
	oracleCfg.oracleMixes = true
	wantReport, wantTrace := runCampaignFiles(t, context.Background(), oracleCfg)

	check := func(t *testing.T, report, trace []byte) {
		t.Helper()
		if !bytes.Equal(report, wantReport) {
			t.Errorf("report differs from oracle campaign (%d vs %d bytes)", len(report), len(wantReport))
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("telemetry differs from oracle campaign (%d vs %d bytes)", len(trace), len(wantTrace))
		}
	}

	t.Run("fused-cold", func(t *testing.T) {
		cfg := equivalenceConfig(t.TempDir())
		cfg.sensIns = 0
		report, trace := runCampaignFiles(t, context.Background(), cfg)
		check(t, report, trace)
	})

	t.Run("fused-warm", func(t *testing.T) {
		cacheDir := t.TempDir()
		cfg := equivalenceConfig(t.TempDir())
		cfg.sensIns = 0
		cfg.feCacheDir = cacheDir
		report, trace := runCampaignFiles(t, context.Background(), cfg) // populates the cache
		check(t, report, trace)

		warm := equivalenceConfig(t.TempDir())
		warm.sensIns = 0
		warm.feCacheDir = cacheDir
		report, trace = runCampaignFiles(t, context.Background(), warm) // replays it
		check(t, report, trace)
	})

	t.Run("kill-mid-mix-and-resume", func(t *testing.T) {
		cfg := equivalenceConfig(t.TempDir())
		cfg.sensIns = 0
		cfg.feCacheDir = t.TempDir()
		cfg.ckptPath = filepath.Join(filepath.Dir(cfg.outPath), "run.ckpt")

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// With no study, the first engine chunks belong to mix 1's fused
		// front-end and lanes: chunk 40 cancels while the mix is mid-flight.
		inj := faultinject.CancelAt(40, cancel)
		experiments.SetEngineChunkHook(inj.Fire)
		err := run(ctx, cfg, io.Discard)
		experiments.SetEngineChunkHook(nil)
		if err != nil {
			t.Fatalf("interrupted run did not exit cleanly: %v", err)
		}
		partial, err := os.ReadFile(cfg.outPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(partial, []byte("0/2 mixes")) {
			t.Fatalf("kill point missed the mix phase; interrupted manifest:\n%s", partial)
		}

		report, trace := runCampaignFiles(t, context.Background(), cfg)
		check(t, report, trace)
	})
}

// A failed unit must leave the -out and -telemetry destinations exactly as
// they were: the report of the previous successful campaign, not a torn or
// truncated file.
func TestFailedRunPreservesPreviousOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small campaign")
	}
	cfg := equivalenceConfig(t.TempDir())
	cfg.sensIns = 0 // mix units only; keep it quick
	oldReport, oldTrace := runCampaignFiles(t, context.Background(), cfg)

	inj := faultinject.ErrorAt(1, ^uint64(0), nil) // every engine chunk fails
	experiments.SetEngineChunkHook(inj.Fire)
	cfg.sensIns = 20_000 // now the study runs — and fails persistently
	err := run(context.Background(), cfg, io.Discard)
	experiments.SetEngineChunkHook(nil)
	if err == nil {
		t.Fatal("persistently faulted run reported success")
	}
	gotReport, _ := os.ReadFile(cfg.outPath)
	gotTrace, _ := os.ReadFile(cfg.telePath)
	if !bytes.Equal(gotReport, oldReport) {
		t.Error("failed run disturbed the previous report")
	}
	if !bytes.Equal(gotTrace, oldTrace) {
		t.Error("failed run disturbed the previous telemetry trace")
	}
}
