package main

import "testing"

func TestParseMixes(t *testing.T) {
	ids, err := parseMixes("")
	if err != nil || len(ids) != 16 {
		t.Fatalf("default = %v, %v", ids, err)
	}
	ids, err = parseMixes("1, 4,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 4 || ids[2] != 16 {
		t.Errorf("ids = %v", ids)
	}
	if _, err := parseMixes("1,x"); err == nil {
		t.Error("bad id accepted")
	}
}
