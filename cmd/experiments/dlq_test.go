package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"untangle/internal/checkpoint"
	"untangle/internal/experiments"
	"untangle/internal/faultinject"
)

// The dead-letter guarantee end to end: a campaign with one poisoned unit
// completes degraded — the poisoned unit in the journal's dead-letter
// section, every healthy unit reported — and after the fault clears, a
// -replay run re-drives exactly the dead unit and commits outputs
// byte-identical to a never-poisoned campaign's.
func TestDeadLetterCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three small campaigns")
	}
	freshReport, freshTrace := runCampaignFiles(t, context.Background(), equivalenceConfig(t.TempDir()))

	cfg := equivalenceConfig(t.TempDir())
	cfg.ckptPath = filepath.Join(filepath.Dir(cfg.outPath), "run.ckpt")
	cfg.dlq = true

	// Poison mix/2: the keyed fault fires on every retry attempt, so the
	// unit exhausts its budget and dead-letters instead of failing the run.
	poison := errors.New("injected poison")
	inj := faultinject.KeyedError(mixKey(2), poison)
	experiments.SetUnitFaultHook(inj.Fire)
	err := run(context.Background(), cfg, io.Discard)
	experiments.SetUnitFaultHook(nil)
	if err != nil {
		t.Fatalf("poisoned campaign failed instead of completing degraded: %v", err)
	}
	if inj.Calls() != experiments.RetryAttempts {
		t.Errorf("fault fired %d times, want %d (one per retry attempt)", inj.Calls(), experiments.RetryAttempts)
	}

	degraded, err := os.ReadFile(cfg.outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(degraded, []byte("1/2 mixes (1 dead-lettered).")) {
		t.Fatalf("degraded manifest missing the dead-letter count:\n%s", degraded)
	}
	// The healthy units' bytes match the fresh run: the reports agree up to
	// the point where mix/2's group would have appeared.
	cut := bytes.Index(freshReport, []byte("Mix 2"))
	if cut < 0 {
		t.Fatalf("fresh report has no Mix 2 group:\n%s", freshReport)
	}
	if !bytes.HasPrefix(degraded, freshReport[:cut]) {
		t.Errorf("degraded report's healthy prefix diverges from the fresh run's:\n%s", degraded)
	}
	if bytes.Contains(degraded, []byte("Mix 2")) {
		t.Error("degraded report contains the dead mix's group")
	}

	// The journal holds the dead letter with its attempt count and cause.
	j, err := checkpoint.Open(cfg.ckptPath, cfg.fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	dl, ok := j.Dead(mixKey(2))
	if !ok {
		t.Fatalf("mix/2 not dead-lettered; dead letters: %v", j.DeadLetters())
	}
	if dl.Attempts != experiments.RetryAttempts {
		t.Errorf("dead letter attempts = %d, want %d", dl.Attempts, experiments.RetryAttempts)
	}
	if !strings.Contains(dl.Error, poison.Error()) {
		t.Errorf("dead letter error %q does not name the cause %q", dl.Error, poison)
	}
	if !j.Done(mixKey(1)) {
		t.Error("healthy unit mix/1 missing from the journal")
	}
	j.Close()

	// Fault cleared: -replay re-drives the dead unit. The merged outputs
	// must be byte-identical to the never-poisoned campaign's.
	cfg.replay = true
	gotReport, gotTrace := runCampaignFiles(t, context.Background(), cfg)
	if !bytes.Equal(gotReport, freshReport) {
		t.Errorf("replayed report differs from fresh run (%d vs %d bytes)", len(gotReport), len(freshReport))
	}
	if !bytes.Equal(gotTrace, freshTrace) {
		t.Errorf("replayed telemetry differs from fresh run (%d vs %d bytes)", len(gotTrace), len(freshTrace))
	}

	// The successful replay superseded the dead letter.
	j, err = checkpoint.Open(cfg.ckptPath, cfg.fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if n := j.DeadLen(); n != 0 {
		t.Errorf("journal still holds %d dead letters after replay: %v", n, j.DeadLetters())
	}
}

// A panicking unit dead-letters with its stack instead of crashing the
// campaign; without -replay, a resubmission skips the known-poisoned unit
// rather than burning retries on it.
func TestDeadLetterPanickingUnit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small campaigns")
	}
	cfg := equivalenceConfig(t.TempDir())
	cfg.sensIns = 0 // mix units only: the panic target is a mix
	cfg.ckptPath = filepath.Join(filepath.Dir(cfg.outPath), "run.ckpt")
	cfg.dlq = true

	experiments.SetUnitFaultHook(func(key string) error {
		if key == mixKey(1) {
			panic(fmt.Sprintf("poisoned unit %s", key))
		}
		return nil
	})
	err := run(context.Background(), cfg, io.Discard)
	experiments.SetUnitFaultHook(nil)
	if err != nil {
		t.Fatalf("panicking campaign failed instead of completing degraded: %v", err)
	}
	j, err := checkpoint.Open(cfg.ckptPath, cfg.fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	dl, ok := j.Dead(mixKey(1))
	if !ok {
		t.Fatalf("panicking mix/1 not dead-lettered; dead letters: %v", j.DeadLetters())
	}
	if !strings.Contains(dl.Error, "poisoned unit mix/1") {
		t.Errorf("dead letter error %q does not carry the panic value", dl.Error)
	}
	if dl.Stack == "" {
		t.Error("dead letter has no stack trace")
	}
	j.Close()

	// Resubmission without -replay: the dead key is skipped — zero unit
	// executions for mix/1 — and the campaign still completes degraded.
	var fired int
	experiments.SetUnitFaultHook(func(key string) error {
		if key == mixKey(1) {
			fired++
		}
		return nil
	})
	err = run(context.Background(), cfg, io.Discard)
	experiments.SetUnitFaultHook(nil)
	if err != nil {
		t.Fatalf("resubmitted campaign failed: %v", err)
	}
	if fired != 0 {
		t.Errorf("dead unit re-ran %d times without -replay", fired)
	}
	report, err := os.ReadFile(cfg.outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(report, []byte("(1 dead-lettered).")) {
		t.Errorf("resubmitted manifest lost the dead-letter count:\n%s", report)
	}
}

func TestValidateDLQConfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  config
		want string
	}{
		{"dlq without checkpoint", config{scale: 0.01, dlq: true}, "-checkpoint"},
		{"dlq with shards", config{scale: 0.01, dlq: true, ckptPath: "x", shards: 2}, "-shards"},
	} {
		err := tc.cfg.validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}
	ok := config{scale: 0.01, dlq: true, replay: true, ckptPath: "x"}
	if err := ok.validate(); err != nil {
		t.Errorf("valid dlq config rejected: %v", err)
	}
}
