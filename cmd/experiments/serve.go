// Serve mode: `experiments -serve` is the resident campaign service. One
// campaign.Service (bounded priority queue + worker pool + dead-letter
// journal handling) stays up across campaigns; clients submit campaigns
// over HTTP and the service executes them with the exact run() pipeline the
// CLI uses, so a served campaign's -out and -telemetry bytes are identical
// to a direct run's (TestServeCampaignMatchesDirectRun).
//
// Endpoints (on the shared internal/obs HTTP server, next to /metrics,
// /progress, /healthz, and pprof — see docs/TELEMETRY.md):
//
//	POST /campaigns               submit a campaign (JSON body, see campaignRequest)
//	GET  /campaigns               all campaigns with their job statuses
//	GET  /campaigns/{id}          one campaign
//	POST /campaigns/{id}/cancel   cancel a running campaign
//	GET  /queue                   queue depth/capacity by priority
//
// SIGTERM/SIGINT drain gracefully: in-flight units finish and journal,
// queued units are abandoned (their campaigns end interrupted, with
// committed partial outputs), and resubmitting a campaign against the same
// -checkpoint after a restart resumes it byte-identically.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"untangle/internal/campaign"
	"untangle/internal/experiments"
	"untangle/internal/obs"
	"untangle/internal/telemetry"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

const (
	// envServeTermKey / envServeTermOnce are the drain-injection hooks the
	// restart-equivalence test uses: when the unit with the named key
	// journals, the service drains itself as if SIGTERMed — and the
	// once-sentinel (created O_EXCL) keeps a restarted service from
	// draining again.
	envServeTermKey  = "UNTANGLE_SERVE_TERM_KEY"
	envServeTermOnce = "UNTANGLE_SERVE_TERM_ONCE"
)

// serveMain is the -serve entry point.
func serveMain(args []string) int {
	log.SetFlags(0)
	log.SetPrefix("experiments[serve]: ")
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		httpAddr  = fs.String("http", "127.0.0.1:0", "HTTP address for campaign submission and observability")
		jobs      = fs.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS)")
		depth     = fs.Int("queue-depth", campaign.DefaultQueueDepth, "bound on queued units (backpressure boundary)")
		reject    = fs.Bool("reject", false, "reject campaigns whose units would overflow the queue instead of blocking the submission")
		feCache   = fs.String("fe-cache", "", "persist/replay front-end event streams in this directory (shared by every campaign)")
		feRebld   = fs.Bool("fe-cache-rebuild", false, "regenerate corrupt or key-mismatched -fe-cache entries")
		readyFile = fs.String("ready-file", "", "write the bound HTTP address to this file once serving (test hook)")
		drainWait = fs.Duration("drain-timeout", time.Minute, "bound on the graceful drain at shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *feRebld && *feCache == "" {
		log.Print("-fe-cache-rebuild requires -fe-cache")
		return 2
	}
	if err := runServe(serveOptions{
		httpAddr:  *httpAddr,
		jobs:      *jobs,
		depth:     *depth,
		reject:    *reject,
		feCache:   *feCache,
		feRebld:   *feRebld,
		readyFile: *readyFile,
		drainWait: *drainWait,
	}); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

type serveOptions struct {
	httpAddr  string
	jobs      int
	depth     int
	reject    bool
	feCache   string
	feRebld   bool
	readyFile string
	drainWait time.Duration
}

// serveState is the resident service plus the campaign registry behind the
// HTTP API.
type serveState struct {
	svc      *campaign.Service
	progress *obs.Progress
	reject   bool
	unitHook func(key string) // term-key injection; nil in production

	mu        sync.Mutex
	campaigns map[string]*servedCampaign
	order     []string
	draining  bool
	wg        sync.WaitGroup // live campaign run() goroutines
}

// servedCampaign is one submitted campaign's lifecycle.
type servedCampaign struct {
	id     string
	cancel context.CancelFunc
	oc     *obs.Campaign

	mu    sync.Mutex
	state string // running | completed | interrupted | canceled | failed
	err   string
}

func (sc *servedCampaign) setState(state, errText string) {
	sc.mu.Lock()
	sc.state = state
	sc.err = errText
	sc.mu.Unlock()
}

func runServe(opts serveOptions) error {
	// The front-end cache is process-wide; serve installs it once so every
	// campaign shares it (per-campaign configs leave feCacheDir empty).
	if opts.feCache != "" {
		store, err := tracecache.NewStore(opts.feCache, opts.feRebld)
		if err != nil {
			return err
		}
		experiments.SetFrontEndCache(store)
		defer experiments.SetFrontEndCache(nil)
	}

	reg := telemetry.NewRegistry()
	svc := campaign.New(campaign.Options{
		Workers:    opts.jobs,
		QueueDepth: opts.depth,
		Reject:     opts.reject,
		Registry:   reg,
		Logf:       log.Printf,
	})
	st := &serveState{
		svc:       svc,
		progress:  obs.NewProgress(),
		reject:    opts.reject,
		campaigns: map[string]*servedCampaign{},
	}

	// Self-drain injection: the named unit's journaling triggers the same
	// graceful drain a SIGTERM does (see the env hook docs above).
	termCh := make(chan struct{})
	if termKey := os.Getenv(envServeTermKey); termKey != "" {
		termOnce := os.Getenv(envServeTermOnce)
		var trig sync.Once
		st.unitHook = func(key string) {
			if key != termKey {
				return
			}
			if termOnce != "" {
				f, err := os.OpenFile(termOnce, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
				if err != nil {
					return // a previous incarnation already drained here
				}
				f.Close()
			}
			trig.Do(func() { close(termCh) })
			// Hold this worker until the queue is closed so the units
			// behind the term key deterministically stay for the restart.
			for !svc.Draining() {
				time.Sleep(time.Millisecond)
			}
		}
	}

	srv, err := obs.StartServerEndpoints(opts.httpAddr, st.progress, []obs.Endpoint{
		{Pattern: "POST /campaigns", Handler: http.HandlerFunc(st.handleSubmit)},
		{Pattern: "GET /campaigns", Handler: http.HandlerFunc(st.handleList)},
		{Pattern: "GET /campaigns/{id}", Handler: http.HandlerFunc(st.handleGet)},
		{Pattern: "POST /campaigns/{id}/cancel", Handler: http.HandlerFunc(st.handleCancel)},
		{Pattern: "GET /queue", Handler: http.HandlerFunc(st.handleQueue)},
	}, obs.NamedRegistry{Namespace: "untangle", Registry: reg})
	if err != nil {
		return err
	}
	log.Printf("campaign service: http://%s/{campaigns,queue,metrics,progress,healthz}", srv.Addr())
	if opts.readyFile != "" {
		if err := os.WriteFile(opts.readyFile, []byte(srv.Addr()), 0o644); err != nil {
			srv.Shutdown()
			return err
		}
	}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigCtx.Done():
		log.Print("signal received; draining")
	case <-termCh:
		log.Print("term hook fired; draining")
	}
	stopSignals()

	st.mu.Lock()
	st.draining = true
	st.mu.Unlock()
	dctx, cancel := context.WithTimeout(context.Background(), opts.drainWait)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		return err
	}
	// Drained jobs have settled; wait for their campaigns to commit the
	// partial outputs, then stop answering.
	st.wg.Wait()
	if err := srv.Shutdown(); err != nil {
		return err
	}
	log.Print("drained cleanly")
	return nil
}

// campaignRequest is the POST /campaigns body: the campaign flags of the
// CLI, minus what the service owns (worker count, queue policy, fe-cache).
// sensitivity_instructions defaults to 0 — a served campaign opts into the
// Figure 11 study explicitly.
type campaignRequest struct {
	ID         string  `json:"id"`
	Scale      float64 `json:"scale"`
	Mixes      string  `json:"mixes,omitempty"`
	SensIns    uint64  `json:"sensitivity_instructions,omitempty"`
	SkipActive bool    `json:"skip_active,omitempty"`
	Out        string  `json:"out,omitempty"`
	Telemetry  string  `json:"telemetry,omitempty"`
	Checkpoint string  `json:"checkpoint"`
	Replay     bool    `json:"replay,omitempty"`
	Priority   int     `json:"priority,omitempty"`
}

// config shapes the request into the run() config the CLI would build for
// the equivalent flags, pointed at the shared service.
func (r campaignRequest) config(st *serveState) (config, error) {
	if r.ID == "" {
		return config{}, fmt.Errorf("campaign needs an id")
	}
	if r.Checkpoint == "" {
		return config{}, fmt.Errorf("campaign %s needs a checkpoint path (the dead-letter journal)", r.ID)
	}
	ids, err := parseMixes(r.Mixes)
	if err != nil {
		return config{}, err
	}
	cfg := config{
		scale:     r.Scale,
		ids:       ids,
		sensIns:   r.SensIns,
		active:    !r.SkipActive,
		traced:    r.Telemetry != "",
		outPath:   r.Out,
		telePath:  r.Telemetry,
		ckptPath:  r.Checkpoint,
		dlq:       true,
		replay:    r.Replay,
		priority:  r.Priority,
		service:   st.svc,
		jobPrefix: r.ID + "/",
		quiet:     true,
		unitHook:  st.unitHook,
	}
	if err := cfg.validate(); err != nil {
		return config{}, err
	}
	return cfg, nil
}

// campaignView is the /campaigns JSON shape: the campaign's lifecycle plus
// its jobs' statuses on the service.
type campaignView struct {
	ID    string            `json:"id"`
	State string            `json:"state"`
	Error string            `json:"error,omitempty"`
	Jobs  []campaign.Status `json:"jobs"`
}

func (st *serveState) view(sc *servedCampaign) campaignView {
	sc.mu.Lock()
	v := campaignView{ID: sc.id, State: sc.state, Error: sc.err, Jobs: []campaign.Status{}}
	sc.mu.Unlock()
	for _, js := range st.svc.Jobs() {
		if len(js.ID) > len(sc.id) && js.ID[:len(sc.id)+1] == sc.id+"/" {
			v.Jobs = append(v.Jobs, js)
		}
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (st *serveState) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad campaign request: %v", err)
		return
	}
	cfg, err := req.config(st)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	sc := &servedCampaign{id: req.ID, cancel: cancel, state: "running"}
	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		cancel()
		httpError(w, http.StatusServiceUnavailable, "service draining")
		return
	}
	if prev, ok := st.campaigns[req.ID]; ok {
		prev.mu.Lock()
		running := prev.state == "running"
		prev.mu.Unlock()
		if running {
			st.mu.Unlock()
			cancel()
			httpError(w, http.StatusConflict, "campaign %s already running", req.ID)
			return
		}
	} else {
		st.order = append(st.order, req.ID)
	}
	st.campaigns[req.ID] = sc
	st.wg.Add(1)
	st.mu.Unlock()

	// Per-campaign observability on the shared progress tracker. The phase
	// names carry the campaign id (':' — a '/' would read as a sub-unit
	// span and skip the progress counters).
	sc.oc = obs.NewCampaign(req.ID, nil, st.progress, nil)
	if cfg.sensIns > 0 {
		sc.oc.Phase(req.ID+":sensitivity", len(workload.SPECBenchmarks))
	}
	sc.oc.Phase(req.ID+":mix", len(cfg.ids))
	cfg.observe = func(phase, key string) func(outcome string, err error) {
		_, unit := obsUnitName(key)
		return sc.oc.Unit(req.ID+":"+phase, unit)
	}

	go st.runCampaign(ctx, sc, cfg)
	writeJSON(w, http.StatusAccepted, st.view(sc))
}

// runCampaign executes one submitted campaign with the CLI's run pipeline
// and records its terminal state.
func (st *serveState) runCampaign(ctx context.Context, sc *servedCampaign, cfg config) {
	defer st.wg.Done()
	defer sc.cancel()
	log.Printf("campaign %s: started (scale %v, %d mixes)", sc.id, cfg.scale, len(cfg.ids))
	err := run(ctx, cfg, io.Discard)
	state := "completed"
	errText := ""
	switch {
	case err != nil:
		state, errText = "failed", err.Error()
	case ctx.Err() != nil:
		state = "canceled"
	case st.isDraining():
		// run returns nil for a cleanly interrupted campaign; the partial
		// outputs are committed and a resubmission resumes it.
		state = "interrupted"
	}
	sc.setState(state, errText)
	sc.oc.End(err)
	log.Printf("campaign %s: %s", sc.id, state)
}

func (st *serveState) isDraining() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.draining
}

func (st *serveState) campaign(id string) (*servedCampaign, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sc, ok := st.campaigns[id]
	return sc, ok
}

func (st *serveState) handleList(w http.ResponseWriter, r *http.Request) {
	st.mu.Lock()
	order := append([]string(nil), st.order...)
	st.mu.Unlock()
	views := []campaignView{}
	for _, id := range order {
		if sc, ok := st.campaign(id); ok {
			views = append(views, st.view(sc))
		}
	}
	writeJSON(w, http.StatusOK, views)
}

func (st *serveState) handleGet(w http.ResponseWriter, r *http.Request) {
	sc, ok := st.campaign(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st.view(sc))
}

func (st *serveState) handleCancel(w http.ResponseWriter, r *http.Request) {
	sc, ok := st.campaign(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	sc.cancel()
	writeJSON(w, http.StatusOK, st.view(sc))
}

// handleQueue serves the queue's instantaneous depth/capacity breakdown —
// the backpressure dial an operator watches (docs/TELEMETRY.md "/queue").
func (st *serveState) handleQueue(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, st.svc.Queue())
}
