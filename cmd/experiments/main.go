// Command experiments runs the complete evaluation of the paper — the
// Figure 11 sensitivity study, all 16 workload mixes of Figures 10 and
// 12-17 under the four schemes, the Table 6 leakage summary, and the
// Section 9 active-attacker measurement — and prints everything in the
// paper's layout. The -out flag additionally writes the same report to a
// file (used to regenerate EXPERIMENTS.md's measured columns).
//
// Everything the evaluation simulates is an independent run, so the whole
// command executes on the experiment engine's worker pool: the sensitivity
// study fans out its 36 benchmarks (each one a single multi-lane pass
// covering all 9 partition sizes) and the mix phase fans out the mixes
// (each mix's four schemes plus its active-attacker rerun run inside one
// worker). -jobs bounds the pool; 0 uses every core and 1 is the legacy
// sequential path. The report is identical for every -jobs value: results
// are collected by index and printed in mix order.
//
// Long runs can be watched and profiled: -telemetry streams each mix's
// structured events as JSONL while the run progresses, and the
// -cpuprofile/-memprofile/-trace/-pprof flags profile the simulator
// process itself. SIGINT stops cleanly: in-flight mixes finish, unstarted
// ones are abandoned, and every writer is flushed and closed, so an
// interrupted run leaves a valid (truncated but parseable) report and
// JSONL stream rather than torn lines. A second SIGINT kills the process
// immediately.
//
// Usage:
//
//	experiments -scale 0.01                 # all mixes, laptop-sized
//	experiments -scale 0.01 -jobs 1         # sequential legacy execution
//	experiments -scale 0.01 -mixes 1,2,3,4  # just the Figure 10 mixes
//	experiments -scale 0.01 -telemetry run.jsonl -pprof localhost:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"untangle/internal/experiments"
	"untangle/internal/parallel"
	"untangle/internal/partition"
	"untangle/internal/report"
	"untangle/internal/stats"
	"untangle/internal/telemetry"
	"untangle/internal/workload"
)

// mixKinds is the fixed scheme order of the evaluation; telemetry buffers
// drain in this order so trace files are deterministic.
var mixKinds = []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle, partition.Shared}

// mixOutcome is everything one worker produces for one mix.
type mixOutcome struct {
	res     *experiments.MixResult
	buffers map[partition.Kind]*telemetry.Buffer
	// activeRate is the worst-case per-assessment leakage, NaN-free only
	// when the active-attacker rerun happened.
	activeRate float64
	haveActive bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale    = flag.Float64("scale", 0.01, "scale factor (1.0 = paper fidelity)")
		mixList  = flag.String("mixes", "", "comma-separated mix ids (default: all 16)")
		sensIns  = flag.Uint64("sensitivity-instructions", 1_500_000, "instructions per sensitivity run (0 skips Figure 11)")
		outPath  = flag.String("out", "", "also write the report to this file")
		skipAct  = flag.Bool("skip-active", false, "skip the active-attacker accounting runs")
		telemOut = flag.String("telemetry", "", "stream a JSONL telemetry event trace of every mix to this file")
		jobs     = flag.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	)
	profile := telemetry.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	if profile.Enabled() {
		stop, err := profile.Start()
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Printf("profiling: %v", err)
			}
		}()
	}

	// SIGINT/SIGTERM stop the run: the pool hands no further work out and
	// the deferred closers flush every output so partial files end on
	// whole lines. The signal is captured (not default-fatal) while the
	// context is live, so an in-flight write always completes.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var telemSink *telemetry.JSONL
	if *telemOut != "" {
		f, err := os.Create(*telemOut)
		if err != nil {
			log.Fatal(err)
		}
		telemSink = telemetry.NewJSONL(f)
		defer func() {
			if err := telemSink.Close(); err != nil {
				log.Printf("telemetry: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("telemetry: %v", err)
			}
		}()
	}

	ids, err := parseMixes(*mixList)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 11.
	var study []experiments.SensitivityResult
	if *sensIns > 0 && ctx.Err() == nil {
		log.Printf("running Figure 11 sensitivity study (%d instructions per benchmark pass, %d jobs)...",
			*sensIns, *jobs)
		study, err = experiments.SensitivityStudyContext(ctx, *sensIns, *jobs)
		if err != nil {
			if ctx.Err() != nil {
				log.Print("interrupted during the sensitivity study")
				return
			}
			log.Fatal(err)
		}
		fmt.Fprintln(w, report.Figure11(study))
	}

	// Figures 10 and 12-17 plus Table 6 inputs: one worker per mix. Each
	// worker runs its mix's four schemes (sequentially when several mixes
	// share the pool, so -jobs bounds total concurrency) and then the
	// worst-case accounting rerun.
	outcomes, runErr := runMixes(ctx, ids, *scale, *jobs, !*skipAct, telemSink != nil)
	if runErr != nil && ctx.Err() == nil {
		log.Fatal(runErr)
	}

	// Report in mix order regardless of completion order. After an
	// interrupt, report every mix that finished.
	var rows []experiments.Table6Row
	var activeRates, maintainFracs []float64
	done := 0
	for _, oc := range outcomes {
		if oc.res == nil {
			continue
		}
		done++
		if telemSink != nil {
			for _, kind := range mixKinds {
				for _, ev := range oc.buffers[kind].Events() {
					telemSink.Emit(ev)
				}
			}
			if err := telemSink.Flush(); err != nil {
				log.Fatal(err)
			}
		}
		group, err := report.MixGroup(oc.res, study)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, group)
		row, err := oc.res.Table6()
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
		maintainFracs = append(maintainFracs, row.UntangleMaintainFrac)
		if oc.haveActive {
			activeRates = append(activeRates, oc.activeRate)
		}
	}
	if done < len(ids) {
		log.Printf("interrupted; reporting %d of %d mixes", done, len(ids))
	}

	fmt.Fprintln(w, report.Table6(rows))
	var redSum float64
	for _, r := range rows {
		redSum += r.ReductionPerAssessment
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "Average per-assessment leakage reduction (Untangle vs Time): %.0f%%\n",
			100*redSum/float64(len(rows)))
		fmt.Fprintf(w, "Average Untangle Maintain fraction: %.0f%%\n", 100*stats.Mean(maintainFracs))
	}
	if len(activeRates) > 0 {
		fmt.Fprintf(w, "Active attacker (no Maintain optimization): %.1f bits per assessment on average\n",
			stats.Mean(activeRates))
	}
}

// runMixes fans the mixes onto the worker pool and collects each mix's
// outcome by index. A canceled context abandons unstarted mixes; the
// returned slice still holds every completed outcome.
func runMixes(ctx context.Context, ids []int, scale float64, jobs int, active, traced bool) ([]mixOutcome, error) {
	// Scheme-level concurrency only helps when the mixes themselves cannot
	// fill the pool.
	innerJobs := 1
	if len(ids) == 1 {
		innerJobs = jobs
	}
	return parallel.Map(ctx, len(ids), jobs, func(ctx context.Context, i int) (mixOutcome, error) {
		id := ids[i]
		mix, err := workload.MixByID(id)
		if err != nil {
			return mixOutcome{}, err
		}
		log.Printf("running mix %d at scale %v...", id, scale)
		opts := experiments.Options{Scale: scale, Jobs: innerJobs}
		var oc mixOutcome
		if traced {
			// Telemetry: per-scheme buffers keep concurrent schemes from
			// interleaving; the buffers drain to the shared JSONL stream
			// in fixed scheme order once the mix completes, so the file
			// content is deterministic however the goroutines raced.
			oc.buffers = map[partition.Kind]*telemetry.Buffer{}
			for _, kind := range mixKinds {
				oc.buffers[kind] = telemetry.NewBuffer()
			}
			opts.TracerFor = func(k partition.Kind) *telemetry.Tracer {
				return telemetry.New(oc.buffers[k], nil, fmt.Sprintf("mix%d/%s", id, k))
			}
		}
		if oc.res, err = experiments.RunMixContext(ctx, mix, opts); err != nil {
			return mixOutcome{}, err
		}
		if active && ctx.Err() == nil {
			log.Printf("running mix %d with worst-case (active-attacker) accounting...", id)
			act, err := experiments.RunMixContext(ctx, mix, experiments.Options{
				Scale:               scale,
				Kinds:               []partition.Kind{partition.Untangle},
				WorstCaseAccounting: true,
				Jobs:                innerJobs,
			})
			if err != nil {
				return mixOutcome{}, err
			}
			leak, err := act.LeakagePerAssessment(partition.Untangle)
			if err != nil {
				return mixOutcome{}, err
			}
			oc.activeRate = stats.Mean(leak)
			oc.haveActive = true
		}
		return oc, nil
	})
}

func parseMixes(s string) ([]int, error) {
	if s == "" {
		ids := make([]int, len(workload.Mixes))
		for i, m := range workload.Mixes {
			ids[i] = m.ID
		}
		return ids, nil
	}
	var ids []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad mix id %q", part)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
