// Command experiments runs the complete evaluation of the paper — the
// Figure 11 sensitivity study, all 16 workload mixes of Figures 10 and
// 12-17 under the four schemes, the Table 6 leakage summary, and the
// Section 9 active-attacker measurement — and prints everything in the
// paper's layout. The -out flag additionally writes the same report to a
// file (used to regenerate EXPERIMENTS.md's measured columns).
//
// Everything the evaluation simulates is an independent run, so the whole
// command executes on the experiment engine's worker pool: the sensitivity
// study fans out its 36 benchmarks (each one a single multi-lane pass
// covering all 9 partition sizes) and the mix phase fans out the mixes
// (each mix's four schemes plus its active-attacker rerun run inside one
// worker). -jobs bounds the pool; 0 uses every core and 1 is the legacy
// sequential path. The report is identical for every -jobs value: results
// are collected by index and printed in mix order.
//
// Long campaigns survive faults (see docs/ROBUSTNESS.md). A panicking
// point fails the run with a diagnosable parallel.PanicError instead of
// crashing the process, transient unit failures are retried with
// deterministic backoff, and -checkpoint journals every completed unit
// (benchmark pass, mix outcome) to a crash-safe JSONL file:
//
//	experiments -scale 1.0 -checkpoint run.ckpt
//	# ... crash, power loss, or ^C at hour three ...
//	experiments -scale 1.0 -checkpoint run.ckpt   # redoes only unfinished units
//
// A resumed run's report and telemetry trace are byte-identical to an
// uninterrupted run's. The -out report and -telemetry trace are written
// atomically (complete file or old file, never torn), and every report
// ends with a completeness manifest so an interrupted run is explicit
// about what it covered.
//
// Long runs can be watched and profiled: -telemetry streams each mix's
// structured events as JSONL while the run progresses, and the
// -cpuprofile/-memprofile/-trace/-pprof flags profile the simulator
// process itself. SIGINT stops cleanly: in-flight mixes finish, unstarted
// ones are abandoned, and every writer is flushed and committed, so an
// interrupted run leaves a valid (truncated but parseable) report and
// JSONL stream rather than torn lines. A second SIGINT kills the process
// immediately.
//
// Usage:
//
//	experiments -scale 0.01                 # all mixes, laptop-sized
//	experiments -scale 0.01 -jobs 1         # sequential legacy execution
//	experiments -scale 0.01 -mixes 1,2,3,4  # just the Figure 10 mixes
//	experiments -scale 1.0 -checkpoint run.ckpt -out report.txt
//	experiments -scale 0.01 -telemetry run.jsonl -pprof localhost:6060
//	experiments -scale 1.0 -checkpoint run.ckpt -shards 8   # N worker processes
//
// -shards N executes the campaign's units on N worker processes (re-execs
// of this binary) with per-shard crash-recovery journals and automatic
// worker respawn; the merged outputs are byte-identical to an in-process
// run (see EXPERIMENTS.md "Sharded campaigns" and shard.go).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"untangle/internal/campaign"
	"untangle/internal/checkpoint"
	"untangle/internal/experiments"
	"untangle/internal/fsutil"
	"untangle/internal/parallel"
	"untangle/internal/partition"
	"untangle/internal/report"
	"untangle/internal/stats"
	"untangle/internal/telemetry"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

// mixKinds is the fixed scheme order of the evaluation; telemetry buffers
// drain in this order so trace files are deterministic.
var mixKinds = []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle, partition.Shared}

// config is one campaign's validated settings — main parses flags into it,
// run executes it, and the tests drive run directly.
type config struct {
	scale    float64
	ids      []int
	sensIns  uint64
	jobs     int
	shards   int
	active   bool
	traced   bool
	outPath  string
	telePath string
	ckptPath string

	// Front-end trace cache (EXPERIMENTS.md "Front-end trace cache"): the
	// sensitivity study's post-L1 event streams, persisted per benchmark so
	// repeated campaigns replay instead of regenerate.
	feCacheDir     string // -fe-cache: cache directory ("" = off)
	feCacheRebuild bool   // -fe-cache-rebuild: regenerate corrupt/mismatched entries

	// Resident-service execution (docs/ROBUSTNESS.md "Dead-letter
	// journal"): -dlq routes the campaign's units through the campaign
	// service, so a poisoned unit dead-letters into the checkpoint journal
	// and the run completes degraded instead of failing; -replay re-drives
	// exactly the journaled dead letters.
	dlq      bool // -dlq: dead-letter poisoned units (requires -checkpoint)
	replay   bool // -replay: re-drive dead-lettered units (implies -dlq)
	priority int  // -priority: unit priority on a shared campaign service

	// service, when set (serve mode), is the shared resident service this
	// campaign's jobs are submitted to; nil makes run build (and drain) its
	// own. jobPrefix namespaces the job IDs on a shared service.
	service   *campaign.Service
	jobPrefix string
	// observe, when set (serve mode), opens each unit's observation span —
	// serve owns the progress tracker, so the per-run global unit observer
	// is not installed (see startObs).
	observe func(phase, key string) func(outcome string, err error)

	// oracleMixes forces mix units onto the per-scheme oracle path instead
	// of the fused mix engine (experiments/mixlane.go). Results are bitwise
	// identical either way; the flag exists for verification and timing
	// comparisons.
	oracleMixes bool // -oracle-mixes

	// Observability (docs/TELEMETRY.md): all wall-clock, none of it touches
	// the report or telemetry bytes.
	httpAddr string // -http: serve /metrics, /progress, /healthz, pprof
	obsPath  string // -obs-trace: wall-clock span JSONL
	quiet    bool   // -quiet: suppress the live TTY progress line

	// unitHook, when set (tests only), runs after each mix unit completes
	// and journals — the injection point for kill-at-unit-k.
	unitHook func(key string)
	// httpReady, when set (tests only), receives the observability server's
	// bound address once it is scrapable — how tests reach an ephemeral
	// -http 127.0.0.1:0 port mid-campaign.
	httpReady func(addr string)
}

// savedMix is one mix's journaled outcome: everything the final report
// needs, in rendered or JSON-stable form, so a resumed run can replay the
// unit byte-for-byte without re-simulating. Events holds the telemetry
// lines exactly as the JSONL sink would write them; all floats journal as
// IEEE-754 bit patterns (checkpoint.F64) so the round trip is bit-exact and
// a NaN outcome — possible at extreme scales — still journals.
type savedMix struct {
	Group      string            `json:"group"`
	Row        savedRow          `json:"table6"`
	Events     []json.RawMessage `json:"events,omitempty"`
	ActiveRate checkpoint.F64    `json:"active_rate"`
	HaveActive bool              `json:"have_active"`
}

// savedRow is experiments.Table6Row in journal encoding.
type savedRow struct {
	MixID                  int            `json:"mix_id"`
	TimeAvgPerAssessment   checkpoint.F64 `json:"time_per"`
	TimeAvgTotal           checkpoint.F64 `json:"time_total"`
	UntangleAvgPerAssess   checkpoint.F64 `json:"untangle_per"`
	UntangleAvgTotal       checkpoint.F64 `json:"untangle_total"`
	UntangleMaintainFrac   checkpoint.F64 `json:"maintain_frac"`
	ReductionPerAssessment checkpoint.F64 `json:"reduction_per"`
}

func toSavedRow(r experiments.Table6Row) savedRow {
	return savedRow{
		MixID:                  r.MixID,
		TimeAvgPerAssessment:   checkpoint.F64(r.TimeAvgPerAssessment),
		TimeAvgTotal:           checkpoint.F64(r.TimeAvgTotal),
		UntangleAvgPerAssess:   checkpoint.F64(r.UntangleAvgPerAssess),
		UntangleAvgTotal:       checkpoint.F64(r.UntangleAvgTotal),
		UntangleMaintainFrac:   checkpoint.F64(r.UntangleMaintainFrac),
		ReductionPerAssessment: checkpoint.F64(r.ReductionPerAssessment),
	}
}

func (r savedRow) row() experiments.Table6Row {
	return experiments.Table6Row{
		MixID:                  r.MixID,
		TimeAvgPerAssessment:   float64(r.TimeAvgPerAssessment),
		TimeAvgTotal:           float64(r.TimeAvgTotal),
		UntangleAvgPerAssess:   float64(r.UntangleAvgPerAssess),
		UntangleAvgTotal:       float64(r.UntangleAvgTotal),
		UntangleMaintainFrac:   float64(r.UntangleMaintainFrac),
		ReductionPerAssessment: float64(r.ReductionPerAssessment),
	}
}

func mixKey(id int) string { return fmt.Sprintf("mix/%d", id) }

func main() {
	// Worker mode short-circuits everything: the coordinator re-execs this
	// binary with -shard-worker as the first argument (see shard.go), and
	// the worker must not parse campaign flags, install signal handlers, or
	// touch the campaign's outputs.
	if len(os.Args) > 1 && os.Args[1] == "-shard-worker" {
		os.Exit(workerMain(os.Args[2:]))
	}
	// Serve mode is the resident campaign service (serve.go): it owns its
	// own flag set and signal handling, so it dispatches before flag.Parse
	// like the shard worker does.
	if len(os.Args) > 1 && os.Args[1] == "-serve" {
		os.Exit(serveMain(os.Args[2:]))
	}
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale    = flag.Float64("scale", 0.01, "scale factor (1.0 = paper fidelity)")
		mixList  = flag.String("mixes", "", "comma-separated mix ids (default: all 16)")
		sensIns  = flag.Uint64("sensitivity-instructions", 1_500_000, "instructions per sensitivity run (0 skips Figure 11)")
		outPath  = flag.String("out", "", "also write the report to this file (atomically)")
		skipAct  = flag.Bool("skip-active", false, "skip the active-attacker accounting runs")
		telemOut = flag.String("telemetry", "", "stream a JSONL telemetry event trace of every mix to this file")
		jobs     = flag.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		shards   = flag.Int("shards", 0, "split the campaign across N worker processes (requires -checkpoint; 0/1 = in-process)")
		ckpt     = flag.String("checkpoint", "", "journal completed units to this file and resume from it on restart")
		feCache  = flag.String("fe-cache", "", "persist/replay front-end event streams (sensitivity study and mixes) in this directory")
		oracleMx = flag.Bool("oracle-mixes", false, "run mixes on the per-scheme oracle path instead of the fused engine (bitwise-identical, slower)")
		feRebld  = flag.Bool("fe-cache-rebuild", false, "regenerate corrupt or key-mismatched -fe-cache entries instead of failing")
		dlqRun   = flag.Bool("dlq", false, "run units through the campaign service: poisoned units dead-letter into the journal and the run completes degraded (requires -checkpoint)")
		replay   = flag.Bool("replay", false, "re-drive units the checkpoint journal holds dead letters for (implies -dlq)")
		priority = flag.Int("priority", 0, "unit priority on the campaign service queue (higher dequeues first)")
		httpAddr = flag.String("http", "", "serve /metrics, /progress, /healthz and pprof on this address (e.g. :8080)")
		obsTrace = flag.String("obs-trace", "", "write a wall-clock span trace (JSONL) of the campaign to this file")
		quiet    = flag.Bool("quiet", false, "suppress the live progress line on stderr")
	)
	profile := telemetry.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	ids, err := parseMixes(*mixList)
	if err != nil {
		log.Fatal(err)
	}
	cfg := config{
		scale:          *scale,
		ids:            ids,
		sensIns:        *sensIns,
		jobs:           *jobs,
		shards:         *shards,
		active:         !*skipAct,
		traced:         *telemOut != "",
		outPath:        *outPath,
		telePath:       *telemOut,
		ckptPath:       *ckpt,
		dlq:            *dlqRun || *replay,
		replay:         *replay,
		priority:       *priority,
		feCacheDir:     *feCache,
		feCacheRebuild: *feRebld,
		oracleMixes:    *oracleMx,
		httpAddr:       *httpAddr,
		obsPath:        *obsTrace,
		quiet:          *quiet,
	}
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}

	if profile.Enabled() {
		stop, err := profile.Start()
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Printf("profiling: %v", err)
			}
		}()
	}

	// SIGINT/SIGTERM stop the run: the pool hands no further work out and
	// the completed prefix is reported and committed. The signal is
	// captured (not default-fatal) while the context is live, so an
	// in-flight write always completes.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if err := run(ctx, cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// validate rejects configurations that would otherwise panic deep in the
// engine or silently simulate nothing.
func (c config) validate() error {
	if c.scale <= 0 || c.scale > 1 {
		return fmt.Errorf("-scale must be in (0, 1], got %v", c.scale)
	}
	if c.jobs < 0 {
		return fmt.Errorf("-jobs must be >= 0 (0 = all cores), got %d", c.jobs)
	}
	if c.feCacheRebuild && c.feCacheDir == "" {
		return fmt.Errorf("-fe-cache-rebuild requires -fe-cache")
	}
	if c.shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", c.shards)
	}
	if c.shards > 1 && c.ckptPath == "" {
		return fmt.Errorf("-shards requires -checkpoint (the per-shard journals derive from it)")
	}
	if c.dlq && c.ckptPath == "" {
		return fmt.Errorf("-dlq requires -checkpoint (the journal is the dead-letter store)")
	}
	if c.dlq && c.shards > 1 {
		return fmt.Errorf("-dlq is incompatible with -shards (the campaign service owns unit execution)")
	}
	return nil
}

// fingerprint pins the checkpoint journal to this exact campaign: results
// journaled under any other scale, instruction budget, unit set, or
// compiled-in parameter table must not be resumed.
func (c config) fingerprint() checkpoint.Fingerprint {
	schemes := make([]string, len(mixKinds))
	for i, k := range mixKinds {
		schemes[i] = k.String()
	}
	return checkpoint.Fingerprint{
		Scale:        c.scale,
		Instructions: c.sensIns,
		Schemes:      schemes,
		Units:        fmt.Sprintf("mixes=%v active=%t telemetry=%t", c.ids, c.active, c.traced),
		ParamsTag:    experiments.ParamsFingerprint(),
	}
}

// run executes the campaign and writes the report to stdout (and, per
// cfg, atomically to a file). It returns nil for complete and for cleanly
// interrupted runs — both leave committed, self-describing outputs — and
// an error when a unit failed, in which case the -out and -telemetry
// targets keep their previous contents (the journal, if any, keeps the
// completed units for a resume).
func run(ctx context.Context, cfg config, stdout io.Writer) (retErr error) {
	var w io.Writer = stdout
	var outFile *fsutil.AtomicFile
	if cfg.outPath != "" {
		f, err := fsutil.CreateAtomic(cfg.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		outFile = f
		w = io.MultiWriter(stdout, f)
	}

	var telemSink *telemetry.JSONL
	var telemFile *fsutil.AtomicFile
	if cfg.telePath != "" {
		f, err := fsutil.CreateAtomic(cfg.telePath)
		if err != nil {
			return err
		}
		defer f.Close()
		telemFile = f
		telemSink = telemetry.NewJSONL(f)
	}

	var journal *checkpoint.Journal
	if cfg.ckptPath != "" {
		j, err := checkpoint.Open(cfg.ckptPath, cfg.fingerprint())
		if err != nil {
			return err
		}
		defer j.Close()
		if n := j.Resumed(); n > 0 {
			log.Printf("resuming from %s: %d units already complete", cfg.ckptPath, n)
		}
		journal = j
	}

	// Front-end trace cache: installed process-wide before the study so
	// every engine pass sees it; cleared on exit so tests driving run()
	// back-to-back never leak a store into the next campaign.
	var feStore *tracecache.Store
	if cfg.feCacheDir != "" {
		st, err := tracecache.NewStore(cfg.feCacheDir, cfg.feCacheRebuild)
		if err != nil {
			return err
		}
		feStore = st
		experiments.SetFrontEndCache(feStore)
		defer experiments.SetFrontEndCache(nil)
		defer func() {
			c := feStore.Counters()
			log.Printf("fe-cache: %d hits, %d misses, %d rebuilds, %d outcome hits, %d outcome misses, %d bytes read, %d bytes written",
				c.Hits, c.Misses, c.Rebuilds, c.OutcomeHits, c.OutcomeMisses, c.BytesRead, c.BytesWritten)
		}()
	}

	// Operational observability (progress, spans, /metrics) — wall-clock
	// surfaces only, torn down with the campaign's final error so the root
	// span records the outcome.
	obsSt, err := startObs(cfg, journal, feStore)
	if err != nil {
		return err
	}
	defer func() { obsSt.stop(retErr) }()

	// Sharded execution: spawn the worker processes up front so both
	// phases reuse them. The campaign's phase structure, interrupt
	// semantics, and outputs are identical either way — only where the
	// units execute changes.
	var sc *shardCampaign
	if cfg.shards > 1 {
		sc, err = newShardCampaign(cfg, journal)
		if err != nil {
			return err
		}
		defer sc.close()
	}

	// Dead-letter execution: route the units through the resident campaign
	// service so a poisoned unit degrades the run instead of failing it.
	var qc *queueCampaign
	if cfg.dlq {
		qc, err = newQueueCampaign(cfg, journal)
		if err != nil {
			return err
		}
		defer qc.close()
	}

	// Figure 11.
	var study []experiments.SensitivityResult
	if cfg.sensIns > 0 && ctx.Err() == nil {
		log.Printf("running Figure 11 sensitivity study (%d instructions per benchmark pass, %d jobs)...",
			cfg.sensIns, cfg.jobs)
		var err error
		switch {
		case qc != nil:
			study, err = qc.sensitivityStudy(ctx)
		case sc != nil:
			study, err = sc.sensitivityStudy(ctx)
		default:
			study, err = experiments.SensitivityStudyCheckpointed(ctx, cfg.sensIns, cfg.jobs, journal)
		}
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, campaign.ErrInterrupted) {
				log.Print("interrupted during the sensitivity study")
				writeManifest(w, cfg, study, 0, journalDead(journal))
				return commit(telemSink, telemFile, outFile)
			}
			return err
		}
		fmt.Fprintln(w, report.Figure11(study))
	}

	// Figures 10 and 12-17 plus Table 6 inputs: one worker per mix. Each
	// worker runs its mix's four schemes (sequentially when several mixes
	// share the pool, so -jobs bounds total concurrency) and then the
	// worst-case accounting rerun, and journals the finished unit.
	var outcomes []*savedMix
	var runErr error
	switch {
	case qc != nil:
		outcomes, runErr = qc.runMixes(ctx, study)
	case sc != nil:
		outcomes, runErr = sc.runMixes(ctx, study)
	default:
		outcomes, runErr = runMixes(ctx, cfg, study, journal)
	}
	if runErr != nil && ctx.Err() == nil && !errors.Is(runErr, campaign.ErrInterrupted) {
		return runErr
	}

	// Report in mix order regardless of completion order. After an
	// interrupt, report every mix that finished.
	var rows []experiments.Table6Row
	var activeRates, maintainFracs []float64
	done := 0
	for _, sv := range outcomes {
		if sv == nil {
			continue
		}
		done++
		if telemSink != nil {
			for _, line := range sv.Events {
				telemSink.EmitRaw(line)
			}
			if err := telemSink.Flush(); err != nil {
				return err
			}
		}
		fmt.Fprintln(w, sv.Group)
		row := sv.Row.row()
		rows = append(rows, row)
		maintainFracs = append(maintainFracs, row.UntangleMaintainFrac)
		if sv.HaveActive {
			activeRates = append(activeRates, float64(sv.ActiveRate))
		}
	}
	if done < len(cfg.ids) {
		if dead := journalDead(journal); dead > 0 {
			log.Printf("degraded; reporting %d of %d mixes (%d units dead-lettered)", done, len(cfg.ids), dead)
		} else {
			log.Printf("interrupted; reporting %d of %d mixes", done, len(cfg.ids))
		}
	}

	fmt.Fprintln(w, report.Table6(rows))
	var redSum float64
	for _, r := range rows {
		redSum += r.ReductionPerAssessment
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "Average per-assessment leakage reduction (Untangle vs Time): %.0f%%\n",
			100*redSum/float64(len(rows)))
		fmt.Fprintf(w, "Average Untangle Maintain fraction: %.0f%%\n", 100*stats.Mean(maintainFracs))
	}
	if len(activeRates) > 0 {
		fmt.Fprintf(w, "Active attacker (no Maintain optimization): %.1f bits per assessment on average\n",
			stats.Mean(activeRates))
	}
	writeManifest(w, cfg, study, done, journalDead(journal))
	return commit(telemSink, telemFile, outFile)
}

// journalDead counts the journal's live dead letters; zero without a
// journal. A replay that succeeds clears its key (Record supersedes the
// dead letter), so a fully repaired run reports no dead units.
func journalDead(j *checkpoint.Journal) int {
	if j == nil {
		return 0
	}
	return j.DeadLen()
}

// writeManifest ends the report with an explicit statement of coverage, so
// a degraded or interrupted run can never be mistaken for a complete one.
// The dead-letter suffix appears only when units actually died, keeping a
// clean run's manifest byte-identical to pre-dlq reports.
func writeManifest(w io.Writer, cfg config, study []experiments.SensitivityResult, mixesDone, dead int) {
	sens := "sensitivity study skipped"
	if cfg.sensIns > 0 {
		doneSens := 0
		for _, r := range study {
			if r.Name != "" {
				doneSens++
			}
		}
		total := len(workload.SPECBenchmarks)
		sens = fmt.Sprintf("%d/%d sensitivity benchmarks", doneSens, total)
	}
	if dead > 0 {
		fmt.Fprintf(w, "Completed: %s, %d/%d mixes (%d dead-lettered).\n", sens, mixesDone, len(cfg.ids), dead)
		return
	}
	fmt.Fprintf(w, "Completed: %s, %d/%d mixes.\n", sens, mixesDone, len(cfg.ids))
}

// commit publishes the atomic outputs. Called on complete and on cleanly
// interrupted runs; error paths skip it, leaving previous file contents.
func commit(telemSink *telemetry.JSONL, telemFile, outFile *fsutil.AtomicFile) error {
	if telemSink != nil {
		if err := telemSink.Close(); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		if err := telemFile.Commit(); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
	}
	if outFile != nil {
		if err := outFile.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// runMixes fans the mixes onto the worker pool and collects each mix's
// rendered outcome by index. Units already in the journal are replayed
// without simulating; fresh units retry transient failures, then journal.
// A canceled context abandons unstarted mixes; the returned slice still
// holds every completed outcome. A unit the cancellation cut short (main
// run done, active rerun not) is reported but never journaled, so a resume
// re-runs it in full rather than recording a truncated outcome.
func runMixes(ctx context.Context, cfg config, study []experiments.SensitivityResult, journal *checkpoint.Journal) ([]*savedMix, error) {
	// Scheme-level concurrency only helps when the mixes themselves cannot
	// fill the pool.
	innerJobs := 1
	if len(cfg.ids) == 1 {
		innerJobs = cfg.jobs
	}
	return parallel.Map(ctx, len(cfg.ids), cfg.jobs, func(ctx context.Context, i int) (out *savedMix, err error) {
		id := cfg.ids[i]
		key := mixKey(id)
		// Observability: report the unit's begin/end (with its outcome and
		// error status) to whatever observer the command installed. No-op
		// when observability is off — unitDone is nil.
		outcome := experiments.UnitGenerated
		if unitDone := experiments.ObserveUnit("mix", key); unitDone != nil {
			defer func() { unitDone(outcome, err) }()
		}
		if journal != nil {
			var sv savedMix
			if ok, err := journal.Lookup(key, &sv); err != nil {
				return nil, fmt.Errorf("checkpoint %s: %w", key, err)
			} else if ok {
				log.Printf("mix %d: resumed from checkpoint", id)
				outcome = experiments.UnitResumed
				return &sv, nil
			}
		}
		sv, err := runMixUnit(ctx, cfg, study, id, innerJobs)
		if err != nil {
			return nil, err
		}
		if journal != nil && (!cfg.active || sv.HaveActive) {
			if err := journal.Record(key, sv); err != nil {
				return nil, fmt.Errorf("checkpoint %s: %w", key, err)
			}
		}
		if cfg.unitHook != nil {
			cfg.unitHook(key)
		}
		return sv, nil
	})
}

// runMixUnit simulates one mix in full — the four-scheme run with
// per-scheme telemetry buffers, the worst-case accounting rerun, and the
// rendered report group — and returns the unit's journal value. It is the
// single execution path for a mix whether the unit runs on the in-process
// pool or inside a shard worker, which is what makes the two journals
// byte-identical. A cancellation that lands between the main run and the
// active rerun returns sv with HaveActive false; callers must not journal
// such a truncated unit (a resume re-runs it in full).
func runMixUnit(ctx context.Context, cfg config, study []experiments.SensitivityResult, id, innerJobs int) (*savedMix, error) {
	key := mixKey(id)
	mix, err := workload.MixByID(id)
	if err != nil {
		return nil, err
	}
	log.Printf("running mix %d at scale %v...", id, cfg.scale)
	var res *experiments.MixResult
	var buffers map[partition.Kind]*telemetry.Buffer
	err = parallel.RetryUnit(ctx, key, experiments.RetryAttempts, experiments.RetryBackoff, func(ctx context.Context, attempt int) error {
		// Fault-injection seam: a keyed fault poisons this unit on every
		// attempt, exhausting the retry budget deterministically.
		if ferr := experiments.FireUnitFault(key); ferr != nil {
			return ferr
		}
		passDone := experiments.ObserveUnit("mix/pass", fmt.Sprintf("%s#%d", key, attempt))
		opts := experiments.Options{Scale: cfg.scale, Jobs: innerJobs, DisableFusion: cfg.oracleMixes}
		if cfg.traced {
			// Telemetry: per-scheme buffers keep concurrent schemes
			// from interleaving; the buffers drain to the shared JSONL
			// stream in fixed scheme order once the mix completes, so
			// the file content is deterministic however the goroutines
			// raced. Fresh buffers per attempt keep a retried run from
			// double-recording the failed attempt's events.
			buffers = map[partition.Kind]*telemetry.Buffer{}
			for _, kind := range mixKinds {
				buffers[kind] = telemetry.NewBuffer()
			}
			opts.TracerFor = func(k partition.Kind) *telemetry.Tracer {
				return telemetry.New(buffers[k], nil, fmt.Sprintf("mix%d/%s", id, k))
			}
		}
		var err error
		res, err = experiments.RunMixContext(ctx, mix, opts)
		if passDone != nil {
			passDone(experiments.UnitGenerated, err)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	var sv savedMix
	if cfg.active && ctx.Err() == nil {
		log.Printf("running mix %d with worst-case (active-attacker) accounting...", id)
		var act *experiments.MixResult
		err = parallel.Retry(ctx, experiments.RetryAttempts, experiments.RetryBackoff, func(ctx context.Context, attempt int) error {
			passDone := experiments.ObserveUnit("mix/active", fmt.Sprintf("%s#%d", key, attempt))
			var err error
			act, err = experiments.RunMixContext(ctx, mix, experiments.Options{
				Scale:               cfg.scale,
				Kinds:               []partition.Kind{partition.Untangle},
				WorstCaseAccounting: true,
				Jobs:                innerJobs,
				DisableFusion:       cfg.oracleMixes,
			})
			if passDone != nil {
				passDone(experiments.UnitGenerated, err)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		leak, err := act.LeakagePerAssessment(partition.Untangle)
		if err != nil {
			return nil, err
		}
		sv.ActiveRate = checkpoint.F64(stats.Mean(leak))
		sv.HaveActive = true
	}
	if sv.Group, err = report.MixGroup(res, study); err != nil {
		return nil, err
	}
	row, err := res.Table6()
	if err != nil {
		return nil, err
	}
	sv.Row = toSavedRow(row)
	if cfg.traced {
		for _, kind := range mixKinds {
			for _, ev := range buffers[kind].Events() {
				line, err := telemetry.MarshalEvent(ev)
				if err != nil {
					return nil, err
				}
				sv.Events = append(sv.Events, json.RawMessage(line))
			}
		}
	}
	return &sv, nil
}

// parseMixes expands and validates the -mixes flag: every id must be an
// integer naming one of the paper's mixes.
func parseMixes(s string) ([]int, error) {
	if s == "" {
		ids := make([]int, len(workload.Mixes))
		for i, m := range workload.Mixes {
			ids[i] = m.ID
		}
		return ids, nil
	}
	var ids []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad mix id %q", part)
		}
		if _, err := workload.MixByID(id); err != nil {
			return nil, fmt.Errorf("bad mix id %d: %w", id, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
