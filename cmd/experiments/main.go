// Command experiments runs the complete evaluation of the paper — the
// Figure 11 sensitivity study, all 16 workload mixes of Figures 10 and
// 12-17 under the four schemes, the Table 6 leakage summary, and the
// Section 9 active-attacker measurement — and prints everything in the
// paper's layout. The -out flag additionally writes the same report to a
// file (used to regenerate EXPERIMENTS.md's measured columns).
//
// Usage:
//
//	experiments -scale 0.01                 # all mixes, laptop-sized
//	experiments -scale 0.01 -mixes 1,2,3,4  # just the Figure 10 mixes
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"untangle/internal/experiments"
	"untangle/internal/partition"
	"untangle/internal/report"
	"untangle/internal/stats"
	"untangle/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale   = flag.Float64("scale", 0.01, "scale factor (1.0 = paper fidelity)")
		mixList = flag.String("mixes", "", "comma-separated mix ids (default: all 16)")
		sensIns = flag.Uint64("sensitivity-instructions", 1_500_000, "instructions per sensitivity run (0 skips Figure 11)")
		outPath = flag.String("out", "", "also write the report to this file")
		skipAct = flag.Bool("skip-active", false, "skip the active-attacker accounting runs")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	ids, err := parseMixes(*mixList)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 11.
	var study []experiments.SensitivityResult
	if *sensIns > 0 {
		log.Printf("running Figure 11 sensitivity study (%d instructions per point)...", *sensIns)
		study, err = experiments.SensitivityStudy(*sensIns)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, report.Figure11(study))
	}

	// Figures 10 and 12-17 plus Table 6 inputs.
	var rows []experiments.Table6Row
	var activeRates, maintainFracs []float64
	for _, id := range ids {
		mix, err := workload.MixByID(id)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("running mix %d at scale %v...", id, *scale)
		res, err := experiments.RunMix(mix, experiments.Options{Scale: *scale})
		if err != nil {
			log.Fatal(err)
		}
		group, err := report.MixGroup(res, study)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, group)
		row, err := res.Table6()
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
		maintainFracs = append(maintainFracs, row.UntangleMaintainFrac)

		if !*skipAct {
			log.Printf("running mix %d with worst-case (active-attacker) accounting...", id)
			act, err := experiments.RunMix(mix, experiments.Options{
				Scale:               *scale,
				Kinds:               []partition.Kind{partition.Untangle},
				WorstCaseAccounting: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			leak, err := act.LeakagePerAssessment(partition.Untangle)
			if err != nil {
				log.Fatal(err)
			}
			activeRates = append(activeRates, stats.Mean(leak))
		}
	}

	fmt.Fprintln(w, report.Table6(rows))
	var redSum float64
	for _, r := range rows {
		redSum += r.ReductionPerAssessment
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "Average per-assessment leakage reduction (Untangle vs Time): %.0f%%\n",
			100*redSum/float64(len(rows)))
		fmt.Fprintf(w, "Average Untangle Maintain fraction: %.0f%%\n", 100*stats.Mean(maintainFracs))
	}
	if len(activeRates) > 0 {
		fmt.Fprintf(w, "Active attacker (no Maintain optimization): %.1f bits per assessment on average\n",
			stats.Mean(activeRates))
	}
}

func parseMixes(s string) ([]int, error) {
	if s == "" {
		ids := make([]int, len(workload.Mixes))
		for i, m := range workload.Mixes {
			ids[i] = m.ID
		}
		return ids, nil
	}
	var ids []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad mix id %q", part)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
