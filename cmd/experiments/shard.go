// Sharded campaign execution: -shards N partitions the campaign's unit
// graph (36 sensitivity passes, then the mixes) across N worker processes
// re-exec'd from this binary with -shard-worker. The coordinator owns the
// main checkpoint journal, the report, and the telemetry stream; workers
// own one unit at a time plus a per-shard journal (<checkpoint>.shard<i>)
// that survives their death. The merged outputs are byte-identical to a
// -jobs 1 run of the same campaign — the equivalence tests in
// shard_test.go compare whole files, kills included.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"untangle/internal/checkpoint"
	"untangle/internal/experiments"
	"untangle/internal/obs"
	"untangle/internal/shard"
	"untangle/internal/tracecache"
)

const (
	// shardLease is how long a worker may stay silent before the
	// coordinator declares it dead and reassigns its units. Heartbeats
	// arrive every shardHeartbeatEvery, so a healthy worker is never close
	// to the bound even when a single unit runs for minutes.
	shardLease          = 2 * time.Minute
	shardHeartbeatEvery = 5 * time.Second

	// envShardKillKey / envShardKillOnce are the worker-kill injection
	// hooks the equivalence tests use: a worker that journals the named
	// unit exits immediately afterwards — the journaled-but-unstreamed
	// window — and the kill-once sentinel file (created O_EXCL) makes sure
	// only the first incarnation dies.
	envShardKillKey  = "UNTANGLE_SHARD_KILL_KEY"
	envShardKillOnce = "UNTANGLE_SHARD_KILL_ONCE"
)

// shardJournalPath is worker i's private checkpoint journal. It lives next
// to the main journal so harvest, merge, and resume all find it.
func shardJournalPath(ckpt string, shard int) string {
	return fmt.Sprintf("%s.shard%d", ckpt, shard)
}

// workerMain is the -shard-worker entry point: a single-shard unit executor
// speaking the shard protocol on stdin/stdout. All logging goes to stderr
// (stdout is the protocol stream). The flags mirror the coordinator's
// campaign settings exactly so the worker reconstructs the identical
// checkpoint fingerprint.
func workerMain(args []string) int {
	log.SetFlags(0)
	fs := newWorkerFlags()
	if err := fs.fs.Parse(args); err != nil {
		return 2
	}
	log.SetPrefix(fmt.Sprintf("experiments[shard %d]: ", *fs.shard))

	ids, err := parseMixes(*fs.mixes)
	if err != nil {
		log.Print(err)
		return 2
	}
	cfg := config{
		scale:          *fs.scale,
		ids:            ids,
		sensIns:        *fs.sensIns,
		jobs:           1, // the process count is the parallelism
		active:         !*fs.skipAct,
		traced:         *fs.traced,
		ckptPath:       *fs.ckpt,
		feCacheDir:     *fs.feCache,
		feCacheRebuild: *fs.feRebld,
		oracleMixes:    *fs.oracleMx,
	}
	if cfg.ckptPath == "" {
		log.Print("-shard-worker requires -checkpoint")
		return 2
	}
	// The coordinator owns the campaign's lifecycle: a terminal ^C reaches
	// the whole process group, but the worker must keep draining units
	// until the coordinator says shutdown (or closes the pipe).
	signal.Ignore(os.Interrupt)

	if err := runWorker(cfg, *fs.shard); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// workerFlags is the -shard-worker flag set, shared knowledge with
// spawnWorker which generates the matching argv.
type workerFlags struct {
	fs       *flag.FlagSet
	shard    *int
	scale    *float64
	mixes    *string
	sensIns  *uint64
	skipAct  *bool
	traced   *bool
	ckpt     *string
	feCache  *string
	feRebld  *bool
	oracleMx *bool
}

func newWorkerFlags() *workerFlags {
	fs := flag.NewFlagSet("shard-worker", flag.ContinueOnError)
	return &workerFlags{
		fs:       fs,
		shard:    fs.Int("shard", 0, "this worker's shard index"),
		scale:    fs.Float64("scale", 0.01, "scale factor (must match the coordinator)"),
		mixes:    fs.String("mixes", "", "comma-separated mix ids (must match the coordinator)"),
		sensIns:  fs.Uint64("sensitivity-instructions", 1_500_000, "instructions per sensitivity pass"),
		skipAct:  fs.Bool("skip-active", false, "skip the active-attacker accounting runs"),
		traced:   fs.Bool("traced", false, "journal telemetry events with each mix"),
		ckpt:     fs.String("checkpoint", "", "the campaign's main checkpoint path (shard journal derives from it)"),
		feCache:  fs.String("fe-cache", "", "front-end trace cache directory"),
		feRebld:  fs.Bool("fe-cache-rebuild", false, "regenerate corrupt fe-cache entries"),
		oracleMx: fs.Bool("oracle-mixes", false, "run mixes on the per-scheme oracle path"),
	}
}

// runWorker opens the worker's journal, cache, and heartbeat sidecar, then
// hands the protocol loop to shard.RunWorker.
func runWorker(cfg config, shardIdx int) error {
	journal, err := checkpoint.Open(shardJournalPath(cfg.ckptPath, shardIdx), cfg.fingerprint())
	if err != nil {
		return err
	}
	defer journal.Close()

	if cfg.feCacheDir != "" {
		st, err := tracecache.NewStore(cfg.feCacheDir, cfg.feCacheRebuild)
		if err != nil {
			return err
		}
		experiments.SetFrontEndCache(st)
		defer experiments.SetFrontEndCache(nil)
	}

	// The on-disk heartbeat sidecar rides the shard journal so the
	// coordinator can tell post-mortem when a dead worker last made
	// progress (obs.LastBeat).
	var hb *obs.Heartbeat
	if h, err := obs.OpenHeartbeat(obs.HeartbeatPath(journal)); err != nil {
		log.Printf("heartbeat: %v (continuing without)", err)
	} else {
		hb = h
		defer hb.Close()
	}

	killKey := os.Getenv(envShardKillKey)
	killOnce := os.Getenv(envShardKillOnce)

	var study []experiments.SensitivityResult
	wcfg := shard.WorkerConfig{
		Shard:          shardIdx,
		Journal:        journal,
		HeartbeatEvery: shardHeartbeatEvery,
		OnBeat:         func() { hb.Beat(obs.Snapshot{}) },
		SetContext: func(name string, value json.RawMessage) error {
			if name != "study" {
				return fmt.Errorf("unknown campaign context %q", name)
			}
			s, err := experiments.DecodeStudy(value)
			if err != nil {
				return err
			}
			study = s
			return nil
		},
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			switch {
			case strings.HasPrefix(key, "sens/"):
				return experiments.RunSensitivityUnit(ctx, strings.TrimPrefix(key, "sens/"), cfg.sensIns)
			case strings.HasPrefix(key, "mix/"):
				id, err := strconv.Atoi(strings.TrimPrefix(key, "mix/"))
				if err != nil {
					return nil, fmt.Errorf("bad mix key %q", key)
				}
				sv, err := runMixUnit(ctx, cfg, study, id, 1)
				if err != nil {
					return nil, err
				}
				if cfg.active && !sv.HaveActive {
					// Cancellation landed between the main run and the
					// active rerun; journaling the truncated unit would
					// poison every future resume.
					return nil, fmt.Errorf("mix %d interrupted before the active-attacker rerun", id)
				}
				return json.Marshal(sv)
			}
			return nil, fmt.Errorf("unknown unit key %q", key)
		},
		PostRecord: func(key string) {
			if killKey == "" || key != killKey {
				return
			}
			if killOnce != "" {
				f, err := os.OpenFile(killOnce, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
				if err != nil {
					return // a previous incarnation already died here
				}
				f.Close()
			}
			log.Printf("kill hook: exiting after journaling %s", key)
			os.Exit(17)
		},
	}
	return shard.RunWorker(context.Background(), os.Stdin, os.Stdout, wcfg)
}

// shardCampaign drives a campaign across worker processes. It owns the
// main journal: every streamed result is re-recorded there (bytes
// verbatim), and each phase's outputs are assembled from the journal in
// canonical order — exactly what a resumed sequential run does — so the
// report and telemetry bytes cannot depend on shard scheduling.
type shardCampaign struct {
	cfg     config
	journal *checkpoint.Journal
	coord   *shard.Coordinator

	mu        sync.Mutex
	unitDone  map[string]func(outcome string, err error) // obs spans by unit key
	recordErr error                                      // first main-journal write failure
}

// newShardCampaign merges any leftover shard journals from a previous
// (killed) sharded run into the main journal, then spawns the workers.
func newShardCampaign(cfg config, journal *checkpoint.Journal) (*shardCampaign, error) {
	if journal == nil {
		return nil, errors.New("-shards requires -checkpoint")
	}
	for i := 0; i < cfg.shards; i++ {
		added, err := journal.MergeFrom(shardJournalPath(cfg.ckptPath, i))
		if err != nil {
			return nil, fmt.Errorf("merge shard %d journal: %w", i, err)
		}
		if added > 0 {
			log.Printf("resumed %d units from shard %d's journal", added, i)
		}
	}
	sc := &shardCampaign{
		cfg:      cfg,
		journal:  journal,
		unitDone: make(map[string]func(string, error)),
	}
	coord, err := shard.New(sc.spawnWorker, shard.Options{
		Workers: cfg.shards,
		Lease:   shardLease,
		Recover: func(shardIdx int) (map[string]json.RawMessage, error) {
			path := shardJournalPath(cfg.ckptPath, shardIdx)
			if at, ok := obs.LastBeat(path + ".heartbeat"); ok {
				log.Printf("shard %d last heartbeat %s ago", shardIdx, time.Since(at).Round(time.Second))
			}
			return checkpoint.ReadUnits(path, cfg.fingerprint())
		},
		OnAssign: sc.onAssign,
		OnResult: sc.onResult,
		Logf:     log.Printf,
	})
	if err != nil {
		return nil, err
	}
	sc.coord = coord
	return sc, nil
}

// spawnWorker re-execs this binary in -shard-worker mode. The argv mirrors
// newWorkerFlags so the worker reconstructs the identical fingerprint; the
// environment is inherited, which is how the kill-injection hooks reach
// the workers in tests.
func (sc *shardCampaign) spawnWorker(shardIdx int) (*shard.Proc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	args := []string{
		"-shard-worker",
		"-shard", strconv.Itoa(shardIdx),
		"-scale", strconv.FormatFloat(sc.cfg.scale, 'g', -1, 64),
		"-sensitivity-instructions", strconv.FormatUint(sc.cfg.sensIns, 10),
		"-mixes", idsCSV(sc.cfg.ids),
		"-checkpoint", sc.cfg.ckptPath,
	}
	if !sc.cfg.active {
		args = append(args, "-skip-active")
	}
	if sc.cfg.traced {
		args = append(args, "-traced")
	}
	if sc.cfg.feCacheDir != "" {
		args = append(args, "-fe-cache", sc.cfg.feCacheDir)
	}
	if sc.cfg.feCacheRebuild {
		args = append(args, "-fe-cache-rebuild")
	}
	if sc.cfg.oracleMixes {
		args = append(args, "-oracle-mixes")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &shard.Proc{
		In:   stdin,
		Out:  stdout,
		Kill: func() { cmd.Process.Kill() },
		Wait: func() error { return cmd.Wait() },
	}, nil
}

// onAssign opens the unit's observability span. A reassignment after a
// worker death closes the orphaned span first so the progress counters
// stay coherent.
func (sc *shardCampaign) onAssign(key string, shardIdx int) {
	phase, unit := obsUnitName(key)
	sc.mu.Lock()
	prev := sc.unitDone[key]
	sc.unitDone[key] = experiments.ObserveUnit(phase, unit)
	sc.mu.Unlock()
	if prev != nil {
		prev(experiments.UnitGenerated, errors.New("reassigned after worker death"))
	}
}

// onResult re-records the streamed unit into the main journal — the raw
// bytes pass through verbatim, so the main journal's value for a unit is
// identical to what a sequential run would have recorded — and closes the
// unit's span. Called from Run's event loop, never concurrently.
func (sc *shardCampaign) onResult(key string, shardIdx int, value json.RawMessage, resumed bool) {
	var err error
	if recErr := sc.journal.Record(key, value); recErr != nil {
		err = fmt.Errorf("checkpoint %s: %w", key, recErr)
		sc.mu.Lock()
		if sc.recordErr == nil {
			sc.recordErr = err
		}
		sc.mu.Unlock()
	}
	outcome := experiments.UnitGenerated
	if resumed {
		outcome = experiments.UnitResumed
	}
	sc.mu.Lock()
	done := sc.unitDone[key]
	delete(sc.unitDone, key)
	sc.mu.Unlock()
	if done != nil {
		done(outcome, err)
	}
	if sc.cfg.unitHook != nil && err == nil {
		sc.cfg.unitHook(key)
	}
}

// obsUnitName maps a journal key to the (phase, unit) names the sequential
// path reports, so progress and span traces look the same either way.
func obsUnitName(key string) (phase, unit string) {
	if name, ok := strings.CutPrefix(key, "sens/"); ok {
		return "sensitivity", name
	}
	return "mix", key
}

// runPhase executes the phase's not-yet-journaled keys on the workers.
// Units already in the main journal (a resume, or a merged shard journal)
// are observed as resumed, same as the sequential path.
func (sc *shardCampaign) runPhase(ctx context.Context, keys []string) error {
	todo := keys[:0:0]
	for _, key := range keys {
		if sc.journal.Done(key) {
			phase, unit := obsUnitName(key)
			if done := experiments.ObserveUnit(phase, unit); done != nil {
				done(experiments.UnitResumed, nil)
			}
			continue
		}
		todo = append(todo, key)
	}
	_, err := sc.coord.Run(ctx, todo)
	sc.mu.Lock()
	recErr := sc.recordErr
	sc.mu.Unlock()
	if recErr != nil {
		return recErr
	}
	return err
}

// sensitivityStudy runs the Figure 11 units across the workers and
// assembles the study from the main journal in canonical benchmark order.
// On interruption the partial study is returned with the error, matching
// SensitivityStudyCheckpointed's contract.
func (sc *shardCampaign) sensitivityStudy(ctx context.Context) ([]experiments.SensitivityResult, error) {
	names := experiments.SensitivityOrder()
	keys := make([]string, len(names))
	for i, name := range names {
		keys[i] = experiments.SensitivityKey(name)
	}
	runErr := sc.runPhase(ctx, keys)
	study := make([]experiments.SensitivityResult, len(names))
	for i, key := range keys {
		var raw json.RawMessage
		ok, err := sc.journal.Lookup(key, &raw)
		if err != nil {
			return study, fmt.Errorf("checkpoint %s: %w", key, err)
		}
		if !ok {
			continue // interrupted before this unit; zero value, like the pool
		}
		if study[i], err = experiments.DecodeSensitivityUnit(raw); err != nil {
			return study, fmt.Errorf("checkpoint %s: %w", key, err)
		}
	}
	return study, runErr
}

// runMixes broadcasts the assembled study to the workers, runs the mix
// units, and collects each mix's journaled outcome by index — nil where
// an interrupt left the unit unfinished, exactly like the pooled path.
func (sc *shardCampaign) runMixes(ctx context.Context, study []experiments.SensitivityResult) ([]*savedMix, error) {
	raw, err := experiments.EncodeStudy(study)
	if err != nil {
		return nil, err
	}
	if err := sc.coord.Broadcast("study", raw); err != nil {
		return nil, err
	}
	keys := make([]string, len(sc.cfg.ids))
	for i, id := range sc.cfg.ids {
		keys[i] = mixKey(id)
	}
	runErr := sc.runPhase(ctx, keys)
	outcomes := make([]*savedMix, len(sc.cfg.ids))
	for i, key := range keys {
		var sv savedMix
		ok, err := sc.journal.Lookup(key, &sv)
		if err != nil {
			return outcomes, fmt.Errorf("checkpoint %s: %w", key, err)
		}
		if ok {
			outcomes[i] = &sv
		}
	}
	return outcomes, runErr
}

// close shuts the workers down. Idempotent via the coordinator (dead
// workers are skipped), so the deferred call after an explicit one is
// harmless.
func (sc *shardCampaign) close() {
	if err := sc.coord.Shutdown(); err != nil {
		log.Printf("shard shutdown: %v", err)
	}
	st := sc.coord.Stats()
	log.Printf("shards: %d spawned, %d died, %d assigned, %d completed, %d recovered, %d requeued, %d duplicates",
		st.Spawned, st.Died, st.Assigned, st.Completed, st.Recovered, st.Requeued, st.Duplicates)
}

func idsCSV(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}
