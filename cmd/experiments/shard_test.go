package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestMain lets this test binary double as the shard worker and the
// resident campaign service: the coordinator (and the serve tests) re-exec
// os.Executable() with -shard-worker or -serve as the first argument, which
// in tests is this binary.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-shard-worker" {
		os.Exit(workerMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "-serve" {
		os.Exit(serveMain(os.Args[2:]))
	}
	os.Exit(m.Run())
}

// The tentpole guarantee of sharded execution: a campaign split across
// worker processes — including one whose worker is killed mid-campaign in
// the journaled-but-unstreamed window — commits a report and telemetry
// trace byte-identical to the sequential in-process run's.
func TestShardedCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three small campaigns")
	}
	freshReport, freshTrace := runCampaignFiles(t, context.Background(), equivalenceConfig(t.TempDir()))

	check := func(t *testing.T, gotReport, gotTrace []byte) {
		t.Helper()
		if !bytes.Equal(gotReport, freshReport) {
			t.Errorf("sharded report differs from sequential run (%d vs %d bytes)", len(gotReport), len(freshReport))
		}
		if !bytes.Equal(gotTrace, freshTrace) {
			t.Errorf("sharded telemetry differs from sequential run (%d vs %d bytes)", len(gotTrace), len(freshTrace))
		}
	}

	t.Run("clean", func(t *testing.T) {
		cfg := equivalenceConfig(t.TempDir())
		cfg.ckptPath = filepath.Join(filepath.Dir(cfg.outPath), "run.ckpt")
		cfg.shards = 3
		gotReport, gotTrace := runCampaignFiles(t, context.Background(), cfg)
		check(t, gotReport, gotTrace)
	})

	t.Run("worker-kill", func(t *testing.T) {
		dir := t.TempDir()
		sentinel := filepath.Join(dir, "killed")
		// The worker that draws mix/1 journals it, then exits without
		// streaming the result — the coordinator must harvest the shard
		// journal, respawn, and still merge identical bytes.
		t.Setenv(envShardKillKey, mixKey(1))
		t.Setenv(envShardKillOnce, sentinel)
		cfg := equivalenceConfig(dir)
		cfg.ckptPath = filepath.Join(dir, "run.ckpt")
		cfg.shards = 2
		gotReport, gotTrace := runCampaignFiles(t, context.Background(), cfg)
		if _, err := os.Stat(sentinel); err != nil {
			t.Fatalf("kill hook never fired: %v", err)
		}
		check(t, gotReport, gotTrace)
	})
}
