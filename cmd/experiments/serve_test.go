package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// serveProc is one resident-service subprocess under test.
type serveProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	addr string
	err  error         // cmd.Wait()'s result, valid once done is closed
	done chan struct{} // closed when the subprocess exits
}

// startServe re-execs the test binary in -serve mode and waits for the
// ready file to announce the bound address. extraEnv rides on top of the
// inherited environment (the term-hook injection path).
func startServe(t *testing.T, dir string, extraEnv []string, args ...string) *serveProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ready := filepath.Join(dir, fmt.Sprintf("ready.%d", time.Now().UnixNano()))
	argv := append([]string{"-serve", "-http", "127.0.0.1:0", "-ready-file", ready}, args...)
	cmd := exec.Command(exe, argv...)
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), extraEnv...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sp := &serveProc{t: t, cmd: cmd, done: make(chan struct{})}
	go func() { sp.err = cmd.Wait(); close(sp.done) }()
	t.Cleanup(func() {
		select {
		case <-sp.done:
		default:
			cmd.Process.Kill()
			<-sp.done
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(ready); err == nil && len(b) > 0 {
			sp.addr = string(b)
			return sp
		}
		select {
		case <-sp.done:
			t.Fatalf("serve exited before ready: %v", sp.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never wrote its ready file")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// wait blocks until the serve process exits and returns its error.
func (sp *serveProc) wait() error {
	select {
	case <-sp.done:
		return sp.err
	case <-time.After(60 * time.Second):
		sp.t.Fatal("serve did not exit in time")
		return nil
	}
}

func (sp *serveProc) url(path string) string { return "http://" + sp.addr + path }

func (sp *serveProc) postJSON(path string, body any) (*http.Response, []byte) {
	sp.t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		sp.t.Fatal(err)
	}
	resp, err := http.Post(sp.url(path), "application/json", bytes.NewReader(raw))
	if err != nil {
		sp.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func (sp *serveProc) getJSON(path string, v any) int {
	sp.t.Helper()
	resp, err := http.Get(sp.url(path))
	if err != nil {
		sp.t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			sp.t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// pollCampaign polls GET /campaigns/{id} until the campaign leaves the
// running state, returning its final view.
func (sp *serveProc) pollCampaign(id string, timeout time.Duration) campaignView {
	sp.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v campaignView
		if code := sp.getJSON("/campaigns/"+id, &v); code == http.StatusOK && v.State != "running" {
			return v
		}
		if time.Now().After(deadline) {
			sp.t.Fatalf("campaign %s still running after %v", id, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// A campaign submitted to the resident service commits -out and -telemetry
// bytes identical to a direct CLI run's, and the service's HTTP surface
// (campaign status, /queue) answers throughout.
func TestServeCampaignMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small campaigns, one in a subprocess")
	}
	direct := equivalenceConfig(t.TempDir())
	direct.sensIns = 0 // mixes only: keep the served half quick
	wantReport, wantTrace := runCampaignFiles(t, context.Background(), direct)

	dir := t.TempDir()
	sp := startServe(t, dir, nil, "-jobs", "1")

	req := campaignRequest{
		ID:         "c1",
		Scale:      direct.scale,
		Mixes:      "1,2",
		Checkpoint: filepath.Join(dir, "c1.ckpt"),
		Out:        filepath.Join(dir, "c1.txt"),
		Telemetry:  filepath.Join(dir, "c1.jsonl"),
	}
	resp, body := sp.postJSON("/campaigns", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	// A duplicate live submission is refused (guard on the state: at smoke
	// scale the first campaign could already have finished).
	var cur campaignView
	sp.getJSON("/campaigns/c1", &cur)
	if cur.State == "running" {
		if resp, body := sp.postJSON("/campaigns", req); resp.StatusCode != http.StatusConflict {
			t.Errorf("duplicate submit: %d %s, want 409", resp.StatusCode, body)
		}
	}
	// The queue endpoint answers while the campaign runs.
	var qs struct {
		Len int `json:"len"`
		Cap int `json:"cap"`
	}
	if code := sp.getJSON("/queue", &qs); code != http.StatusOK || qs.Cap <= 0 {
		t.Errorf("/queue: code %d, snapshot %+v", code, qs)
	}

	v := sp.pollCampaign("c1", 5*time.Minute)
	if v.State != "completed" {
		t.Fatalf("campaign ended %s (err %q), want completed", v.State, v.Error)
	}
	foundMix := false
	for _, js := range v.Jobs {
		if js.ID == "c1/mix" {
			foundMix = true
			if js.Done != 2 || js.State != "completed" {
				t.Errorf("mix job status = %+v", js)
			}
		}
	}
	if !foundMix {
		t.Errorf("campaign view has no c1/mix job: %+v", v.Jobs)
	}

	// Graceful shutdown on SIGTERM, exit 0.
	sp.cmd.Process.Signal(syscall.SIGTERM)
	if err := sp.wait(); err != nil {
		t.Fatalf("serve exited uncleanly after SIGTERM: %v", err)
	}

	gotReport, err := os.ReadFile(req.Out)
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, err := os.ReadFile(req.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotReport, wantReport) {
		t.Errorf("served report differs from direct run (%d vs %d bytes)", len(gotReport), len(wantReport))
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("served telemetry differs from direct run (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
}

// The graceful-drain guarantee: a service terminated mid-campaign journals
// its in-flight unit, commits a valid partial report, and exits 0; a
// restarted service resumes the campaign from the same checkpoint and the
// final outputs are byte-identical to an untroubled run's.
func TestServeDrainRestartEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three small campaigns, two in subprocesses")
	}
	direct := equivalenceConfig(t.TempDir())
	direct.sensIns = 0
	wantReport, wantTrace := runCampaignFiles(t, context.Background(), direct)

	dir := t.TempDir()
	req := campaignRequest{
		ID:         "c1",
		Scale:      direct.scale,
		Mixes:      "1,2",
		Checkpoint: filepath.Join(dir, "c1.ckpt"),
		Out:        filepath.Join(dir, "c1.txt"),
		Telemetry:  filepath.Join(dir, "c1.jsonl"),
	}

	// First incarnation: the term hook drains the service the moment mix/1
	// journals — the graceful-shutdown window with mix/2 still queued.
	sentinel := filepath.Join(dir, "drained")
	sp := startServe(t, dir, []string{
		envServeTermKey + "=" + mixKey(1),
		envServeTermOnce + "=" + sentinel,
	}, "-jobs", "1")
	if resp, body := sp.postJSON("/campaigns", req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	if err := sp.wait(); err != nil {
		t.Fatalf("drained serve exited uncleanly: %v", err)
	}
	if _, err := os.Stat(sentinel); err != nil {
		t.Fatalf("term hook never fired: %v", err)
	}
	partial, err := os.ReadFile(req.Out)
	if err != nil {
		t.Fatalf("interrupted campaign committed no report: %v", err)
	}
	if !bytes.Contains(partial, []byte("1/2 mixes")) {
		t.Fatalf("drain point missed; interrupted manifest:\n%s", partial)
	}

	// Second incarnation: the once-sentinel disarms the hook; resubmitting
	// the campaign against the same checkpoint resumes it.
	sp2 := startServe(t, dir, []string{
		envServeTermKey + "=" + mixKey(1),
		envServeTermOnce + "=" + sentinel,
	}, "-jobs", "1")
	if resp, body := sp2.postJSON("/campaigns", req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	v := sp2.pollCampaign("c1", 5*time.Minute)
	if v.State != "completed" {
		t.Fatalf("resumed campaign ended %s (err %q), want completed", v.State, v.Error)
	}
	resumed := 0
	for _, js := range v.Jobs {
		resumed += js.Resumed
	}
	if resumed == 0 {
		t.Error("resumed campaign replayed no units from the journal")
	}
	sp2.cmd.Process.Signal(syscall.SIGTERM)
	if err := sp2.wait(); err != nil {
		t.Fatalf("serve exited uncleanly after SIGTERM: %v", err)
	}

	gotReport, err := os.ReadFile(req.Out)
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, err := os.ReadFile(req.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotReport, wantReport) {
		t.Errorf("resumed report differs from untroubled run (%d vs %d bytes)", len(gotReport), len(wantReport))
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("resumed telemetry differs from untroubled run (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
}

// Bad submissions are rejected with useful errors, not accepted and failed.
func TestServeRejectsBadSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	sp := startServe(t, dir, nil)
	for name, req := range map[string]campaignRequest{
		"no id":         {Scale: 0.01, Checkpoint: filepath.Join(dir, "x.ckpt")},
		"no checkpoint": {ID: "x", Scale: 0.01},
		"bad scale":     {ID: "x", Scale: 7, Checkpoint: filepath.Join(dir, "x.ckpt")},
		"bad mixes":     {ID: "x", Scale: 0.01, Mixes: "99", Checkpoint: filepath.Join(dir, "x.ckpt")},
	} {
		if resp, body := sp.postJSON("/campaigns", req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", name, resp.StatusCode, body)
		} else if !strings.Contains(string(body), "error") {
			t.Errorf("%s: body %s carries no error", name, body)
		}
	}
	if code := sp.getJSON("/campaigns/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign: %d, want 404", code)
	}
	sp.cmd.Process.Signal(syscall.SIGTERM)
	if err := sp.wait(); err != nil {
		t.Fatalf("serve exited uncleanly: %v", err)
	}
}
