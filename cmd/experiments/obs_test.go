package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"untangle/internal/obs"
)

// The acceptance bar for the observability layer: a campaign run with every
// surface enabled — HTTP server, span trace, checkpoint heartbeat — commits
// a report and telemetry trace byte-identical to a run with observability
// off. Along the way the test scrapes /metrics and /progress mid-campaign
// (from the unit hook, i.e. while the mix phase is in flight) and asserts
// both documents are well-formed.
func TestObservabilityDoesNotPerturbOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small campaigns")
	}
	freshReport, freshTrace := runCampaignFiles(t, context.Background(), equivalenceConfig(t.TempDir()))

	cfg := equivalenceConfig(t.TempDir())
	dir := filepath.Dir(cfg.outPath)
	cfg.ckptPath = filepath.Join(dir, "run.ckpt")
	cfg.obsPath = filepath.Join(dir, "spans.jsonl")
	cfg.httpAddr = "127.0.0.1:0"

	var addr string
	cfg.httpReady = func(a string) { addr = a }
	scraped := false
	cfg.unitHook = func(key string) {
		if scraped || !strings.HasPrefix(key, "mix/") {
			return
		}
		scraped = true

		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Errorf("mid-campaign /metrics: %v", err)
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics := string(body)
		for _, want := range []string{
			"untangle_obs_pool_active_workers",
			"# TYPE untangle_obs_sensitivity_unit_seconds histogram",
		} {
			if !strings.Contains(metrics, want) {
				t.Errorf("mid-campaign /metrics missing %q:\n%s", want, metrics)
			}
		}

		resp, err = http.Get("http://" + addr + "/progress")
		if err != nil {
			t.Errorf("mid-campaign /progress: %v", err)
			return
		}
		var snap obs.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Errorf("mid-campaign /progress not JSON: %v", err)
			return
		}
		// The sensitivity study (36 units) is complete; the first mix has
		// finished simulating but its observer callback (a defer) has not
		// counted it yet — that is what "mid-campaign" means at this hook.
		if snap.Done < 36 || snap.Done >= snap.Total || snap.Total != 38 {
			t.Errorf("mid-campaign progress = %d/%d, want 36..37 of 38", snap.Done, snap.Total)
		}
	}

	gotReport, gotTrace := runCampaignFiles(t, context.Background(), cfg)
	if !scraped {
		t.Error("the mid-campaign scrape never ran")
	}
	if !bytes.Equal(gotReport, freshReport) {
		t.Errorf("observed report differs from unobserved run (%d vs %d bytes)", len(gotReport), len(freshReport))
	}
	if !bytes.Equal(gotTrace, freshTrace) {
		t.Errorf("observed telemetry differs from unobserved run (%d vs %d bytes)", len(gotTrace), len(freshTrace))
	}

	// The wall-clock surfaces materialized: spans for campaign, phases,
	// units and engine passes; a heartbeat sidecar next to the checkpoint.
	spans, err := os.ReadFile(cfg.obsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"phase":"campaign"`, `"phase":"sensitivity"`, `"phase":"mix"`, `"phase":"sensitivity/pass"`} {
		if !bytes.Contains(spans, []byte(want)) {
			t.Errorf("span trace missing %s", want)
		}
	}
	if _, err := os.Stat(cfg.ckptPath + ".heartbeat"); err != nil {
		t.Errorf("no heartbeat sidecar: %v", err)
	}
}
