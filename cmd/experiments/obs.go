package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"untangle/internal/checkpoint"
	"untangle/internal/experiments"
	"untangle/internal/obs"
	"untangle/internal/telemetry"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

// obsState is the campaign's operational observability, assembled by
// startObs and torn down by its stop. Every field may be nil — each surface
// (HTTP server, span trace, live progress line, heartbeat) enables
// independently — and a nil *obsState means observability is fully off,
// costing the campaign nothing (see BenchmarkObsOverhead).
//
// None of this touches the campaign's outputs: -out and -telemetry are
// byte-identical with and without observability enabled
// (TestObservabilityDoesNotPerturbOutputs).
type obsState struct {
	campaign  *obs.Campaign
	server    *obs.Server
	reporter  *obs.Reporter
	heartbeat *obs.Heartbeat
	tracer    *obs.Tracer
	traceFile *os.File
}

// obsEnabled reports whether any observability surface is wanted. The
// progress line needs a real terminal (and not -quiet); the heartbeat rides
// along with the checkpoint journal; -http and -obs-trace are explicit.
func (c config) obsEnabled() bool {
	return c.httpAddr != "" || c.obsPath != "" || c.ckptPath != "" ||
		(!c.quiet && obs.IsTTY(os.Stderr))
}

// startObs wires up the enabled surfaces and installs the unit observer.
// journal and store may be nil (no heartbeat / no trace-cache gauges then).
// Returns nil when nothing is enabled.
func startObs(cfg config, journal *checkpoint.Journal, store *tracecache.Store) (*obsState, error) {
	// Serve mode: the resident service owns the progress tracker, registry,
	// and HTTP server, shared across concurrent campaigns — a per-campaign
	// observer would fight over the process-wide unit hook.
	if cfg.service != nil {
		return nil, nil
	}
	if !cfg.obsEnabled() {
		return nil, nil
	}
	st := &obsState{}
	progress := obs.NewProgress()

	if journal != nil {
		hb, err := obs.OpenHeartbeat(obs.HeartbeatPath(journal))
		if err != nil {
			// The heartbeat is advisory; a run directory that rejects the
			// sidecar should not kill the campaign.
			log.Printf("heartbeat: %v (continuing without)", err)
		} else {
			st.heartbeat = hb
			progress.SetPrior(hb.Prior())
		}
	}

	if cfg.obsPath != "" {
		f, err := os.Create(cfg.obsPath)
		if err != nil {
			st.stop(nil)
			return nil, fmt.Errorf("obs trace: %w", err)
		}
		st.traceFile = f
		st.tracer = obs.NewTracer(f)
	}

	reg := telemetry.NewRegistry()
	store.RegisterMetrics(reg) // nil-safe: no-op without -fe-cache
	st.campaign = obs.NewCampaign("experiments", st.tracer, progress, reg)
	if cfg.sensIns > 0 {
		st.campaign.Phase("sensitivity", len(workload.SPECBenchmarks))
	}
	st.campaign.Phase("mix", len(cfg.ids))
	experiments.SetUnitObserver(st.campaign.Unit)

	if cfg.httpAddr != "" {
		srv, err := obs.StartServer(cfg.httpAddr, progress,
			obs.NamedRegistry{Namespace: "untangle", Registry: reg})
		if err != nil {
			st.stop(nil)
			return nil, err
		}
		st.server = srv
		log.Printf("observability: http://%s/{metrics,progress,healthz,debug/pprof}", srv.Addr())
		if cfg.httpReady != nil {
			cfg.httpReady(srv.Addr())
		}
	}

	var line io.Writer // stays a nil interface unless the terminal is real
	if !cfg.quiet && obs.IsTTY(os.Stderr) {
		line = os.Stderr
	}
	if line != nil || st.heartbeat != nil {
		st.reporter = obs.StartReporter(progress, st.heartbeat, line, time.Second)
	}
	return st, nil
}

// stop tears the surfaces down in dependency order: the reporter first (it
// reads progress and beats the heartbeat), then the campaign spans, then
// the sinks. err is the campaign's outcome, recorded on the root span.
// Nil-safe, so error paths in startObs and run can call it unconditionally.
func (st *obsState) stop(err error) {
	if st == nil {
		return
	}
	experiments.SetUnitObserver(nil)
	st.reporter.Stop()
	st.campaign.End(err)
	if st.tracer != nil {
		if ferr := st.tracer.Flush(); ferr != nil {
			log.Printf("obs trace: %v", ferr)
		}
	}
	if st.traceFile != nil {
		st.traceFile.Close()
	}
	if serr := st.server.Shutdown(); serr != nil {
		log.Printf("obs http: %v", serr)
	}
	st.heartbeat.Close()
}
