package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"untangle/internal/checkpoint"
	"untangle/internal/experiments"
	"untangle/internal/report"
)

// TestMain lets this test binary double as the shard worker (the
// coordinator re-execs os.Executable() with -shard-worker first).
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-shard-worker" {
		os.Exit(workerMain(os.Args[2:]))
	}
	os.Exit(m.Run())
}

// A study sharded across worker processes — one of which is killed right
// after journaling a pass, before streaming it — renders the identical
// figure to the sequential in-process study.
func TestShardedStudyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the study twice")
	}
	const instructions = 20_000
	ctx := context.Background()

	seqJ, err := checkpoint.Open(filepath.Join(t.TempDir(), "seq.ckpt"), studyFingerprint(instructions))
	if err != nil {
		t.Fatal(err)
	}
	defer seqJ.Close()
	want, err := experiments.SensitivityStudyCheckpointed(ctx, instructions, 1, seqJ)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sentinel := filepath.Join(dir, "killed")
	t.Setenv(envShardKillKey, experiments.SensitivityKey(want[3].Name))
	t.Setenv(envShardKillOnce, sentinel)
	shJ, err := checkpoint.Open(filepath.Join(dir, "run.ckpt"), studyFingerprint(instructions))
	if err != nil {
		t.Fatal(err)
	}
	defer shJ.Close()
	got, err := runShardedStudy(ctx, 2, instructions, shJ, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sentinel); err != nil {
		t.Fatalf("kill hook never fired: %v", err)
	}
	if gotFig, wantFig := report.Figure11(got), report.Figure11(want); gotFig != wantFig {
		t.Errorf("sharded figure differs from sequential:\n--- sharded ---\n%s\n--- sequential ---\n%s", gotFig, wantFig)
	}
}
