// Sharded study execution: -shards N partitions the 36 benchmark passes
// across N worker processes re-exec'd from this binary with -shard-worker,
// each journaling to <checkpoint>.shard<i> and streaming results back. The
// merged study — and therefore the printed figure — is byte-identical to a
// -jobs 1 run, worker kills included. The mechanism is the same as
// cmd/experiments' (see internal/shard); this command only wires the
// sensitivity phase.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"untangle/internal/checkpoint"
	"untangle/internal/experiments"
	"untangle/internal/obs"
	"untangle/internal/shard"
	"untangle/internal/tracecache"
)

const (
	shardLease          = 2 * time.Minute
	shardHeartbeatEvery = 5 * time.Second

	// Worker-kill injection for the equivalence tests, same contract as
	// cmd/experiments: journal the named unit, then exit; the O_EXCL
	// sentinel keeps replacement workers alive.
	envShardKillKey  = "UNTANGLE_SHARD_KILL_KEY"
	envShardKillOnce = "UNTANGLE_SHARD_KILL_ONCE"
)

func shardJournalPath(ckpt string, shard int) string {
	return fmt.Sprintf("%s.shard%d", ckpt, shard)
}

func studyFingerprint(instructions uint64) checkpoint.Fingerprint {
	return checkpoint.Fingerprint{
		Instructions: instructions,
		Units:        "sensitivity",
		ParamsTag:    experiments.ParamsFingerprint(),
	}
}

// workerMain is the -shard-worker entry point: a sequential sensitivity
// unit executor speaking the shard protocol on stdin/stdout.
func workerMain(args []string) int {
	log.SetFlags(0)
	fs := flag.NewFlagSet("shard-worker", flag.ContinueOnError)
	var (
		shardIdx     = fs.Int("shard", 0, "this worker's shard index")
		instructions = fs.Uint64("instructions", 1_500_000, "measured instructions per run (must match the coordinator)")
		ckpt         = fs.String("checkpoint", "", "the study's main checkpoint path (shard journal derives from it)")
		feCache      = fs.String("fe-cache", "", "front-end trace cache directory")
		feRebuild    = fs.Bool("fe-cache-rebuild", false, "regenerate corrupt fe-cache entries")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log.SetPrefix(fmt.Sprintf("sensitivity[shard %d]: ", *shardIdx))
	if *ckpt == "" {
		log.Print("-shard-worker requires -checkpoint")
		return 2
	}
	// The coordinator owns the lifecycle; ^C reaches the process group but
	// workers drain until told to stop (or their stdin closes).
	signal.Ignore(os.Interrupt)

	journal, err := checkpoint.Open(shardJournalPath(*ckpt, *shardIdx), studyFingerprint(*instructions))
	if err != nil {
		log.Print(err)
		return 1
	}
	defer journal.Close()

	if *feCache != "" {
		st, err := tracecache.NewStore(*feCache, *feRebuild)
		if err != nil {
			log.Print(err)
			return 1
		}
		experiments.SetFrontEndCache(st)
		defer experiments.SetFrontEndCache(nil)
	}

	var hb *obs.Heartbeat
	if h, err := obs.OpenHeartbeat(obs.HeartbeatPath(journal)); err != nil {
		log.Printf("heartbeat: %v (continuing without)", err)
	} else {
		hb = h
		defer hb.Close()
	}

	killKey := os.Getenv(envShardKillKey)
	killOnce := os.Getenv(envShardKillOnce)
	wcfg := shard.WorkerConfig{
		Shard:          *shardIdx,
		Journal:        journal,
		HeartbeatEvery: shardHeartbeatEvery,
		OnBeat:         func() { hb.Beat(obs.Snapshot{}) },
		Exec: func(ctx context.Context, key string) (json.RawMessage, error) {
			name, ok := strings.CutPrefix(key, "sens/")
			if !ok {
				return nil, fmt.Errorf("unknown unit key %q", key)
			}
			return experiments.RunSensitivityUnit(ctx, name, *instructions)
		},
		PostRecord: func(key string) {
			if killKey == "" || key != killKey {
				return
			}
			if killOnce != "" {
				f, err := os.OpenFile(killOnce, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
				if err != nil {
					return
				}
				f.Close()
			}
			log.Printf("kill hook: exiting after journaling %s", key)
			os.Exit(17)
		},
	}
	if err := shard.RunWorker(context.Background(), os.Stdin, os.Stdout, wcfg); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// runShardedStudy executes the study across worker processes and assembles
// it from the main journal in canonical benchmark order, exactly as a
// resumed sequential run would.
func runShardedStudy(ctx context.Context, shards int, instructions uint64, journal *checkpoint.Journal, feCache string, feRebuild bool) ([]experiments.SensitivityResult, error) {
	ckptPath := journal.Path()
	for i := 0; i < shards; i++ {
		added, err := journal.MergeFrom(shardJournalPath(ckptPath, i))
		if err != nil {
			return nil, fmt.Errorf("merge shard %d journal: %w", i, err)
		}
		if added > 0 {
			log.Printf("resumed %d passes from shard %d's journal", added, i)
		}
	}

	spawn := func(shardIdx int) (*shard.Proc, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		args := []string{
			"-shard-worker",
			"-shard", strconv.Itoa(shardIdx),
			"-instructions", strconv.FormatUint(instructions, 10),
			"-checkpoint", ckptPath,
		}
		if feCache != "" {
			args = append(args, "-fe-cache", feCache)
		}
		if feRebuild {
			args = append(args, "-fe-cache-rebuild")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &shard.Proc{
			In:   stdin,
			Out:  stdout,
			Kill: func() { cmd.Process.Kill() },
			Wait: func() error { return cmd.Wait() },
		}, nil
	}

	unitDone := make(map[string]func(outcome string, err error))
	var recordErr error
	coord, err := shard.New(spawn, shard.Options{
		Workers: shards,
		Lease:   shardLease,
		Recover: func(shardIdx int) (map[string]json.RawMessage, error) {
			path := shardJournalPath(ckptPath, shardIdx)
			if at, ok := obs.LastBeat(path + ".heartbeat"); ok {
				log.Printf("shard %d last heartbeat %s ago", shardIdx, time.Since(at).Round(time.Second))
			}
			return checkpoint.ReadUnits(path, studyFingerprint(instructions))
		},
		// OnAssign/OnResult run on the coordinator's event loop, never
		// concurrently, so the maps need no locking here.
		OnAssign: func(key string, shardIdx int) {
			if prev := unitDone[key]; prev != nil {
				prev(experiments.UnitGenerated, fmt.Errorf("reassigned after worker death"))
			}
			unitDone[key] = experiments.ObserveUnit("sensitivity", strings.TrimPrefix(key, "sens/"))
		},
		OnResult: func(key string, shardIdx int, value json.RawMessage, resumed bool) {
			var err error
			if recErr := journal.Record(key, value); recErr != nil && recordErr == nil {
				recordErr = fmt.Errorf("checkpoint %s: %w", key, recErr)
				err = recordErr
			}
			outcome := experiments.UnitGenerated
			if resumed {
				outcome = experiments.UnitResumed
			}
			if done := unitDone[key]; done != nil {
				done(outcome, err)
				delete(unitDone, key)
			}
		},
		Logf: log.Printf,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		if err := coord.Shutdown(); err != nil {
			log.Printf("shard shutdown: %v", err)
		}
		st := coord.Stats()
		log.Printf("shards: %d spawned, %d died, %d assigned, %d completed, %d recovered, %d requeued, %d duplicates",
			st.Spawned, st.Died, st.Assigned, st.Completed, st.Recovered, st.Requeued, st.Duplicates)
	}()

	names := experiments.SensitivityOrder()
	todo := make([]string, 0, len(names))
	for _, name := range names {
		key := experiments.SensitivityKey(name)
		if journal.Done(key) {
			if done := experiments.ObserveUnit("sensitivity", name); done != nil {
				done(experiments.UnitResumed, nil)
			}
			continue
		}
		todo = append(todo, key)
	}
	_, runErr := coord.Run(ctx, todo)
	if recordErr != nil {
		return nil, recordErr
	}
	if runErr != nil {
		return nil, runErr
	}

	study := make([]experiments.SensitivityResult, len(names))
	for i, name := range names {
		key := experiments.SensitivityKey(name)
		var raw json.RawMessage
		ok, err := journal.Lookup(key, &raw)
		if err != nil {
			return nil, fmt.Errorf("checkpoint %s: %w", key, err)
		}
		if !ok {
			return nil, fmt.Errorf("checkpoint %s: missing after sharded run", key)
		}
		if study[i], err = experiments.DecodeSensitivityUnit(raw); err != nil {
			return nil, fmt.Errorf("checkpoint %s: %w", key, err)
		}
	}
	return study, nil
}
