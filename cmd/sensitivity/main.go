// Command sensitivity runs the Figure 11 LLC-sensitivity study: every
// SPEC17-like benchmark simulated with each of the 9 supported partition
// sizes, reporting IPC normalized to the 8MB maximum and the resulting
// adequate LLC size and sensitivity classification.
//
// Each benchmark is one multi-lane engine pass — the op stream and the
// private L1 are simulated once and all 9 partition sizes ride on that
// shared front-end — and the 36 passes fan out onto the experiment engine's
// worker pool; -jobs bounds the pool (0 = GOMAXPROCS, 1 = sequential).
// Results are identical for every -jobs value. SIGINT cancels the study:
// in-flight passes stop at their next front-end chunk.
//
// Usage:
//
//	sensitivity                       # all 36 benchmarks, all cores
//	sensitivity -jobs 1               # sequential (legacy) execution
//	sensitivity -bench mcf_0          # one benchmark
//	sensitivity -instructions 3000000 # higher fidelity
//	sensitivity -classify-only        # adequate sizes only
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"untangle/internal/experiments"
	"untangle/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sensitivity: ")
	var (
		bench        = flag.String("bench", "", "run a single benchmark (default: all 36)")
		instructions = flag.Uint64("instructions", 1_500_000, "measured instructions per run (an equal warmup precedes)")
		jobs         = flag.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		classifyOnly = flag.Bool("classify-only", false, "print adequate sizes only instead of the full curve")
	)
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var study []experiments.SensitivityResult
	var err error
	switch {
	case *bench != "" && *classifyOnly:
		var r experiments.SensitivityResult
		r, err = experiments.Classify(*bench, *instructions)
		study = []experiments.SensitivityResult{r}
	case *bench != "":
		var r experiments.SensitivityResult
		r, err = experiments.Sensitivity(*bench, *instructions)
		study = []experiments.SensitivityResult{r}
	case *classifyOnly:
		study, err = experiments.ClassifyStudyContext(ctx, *instructions, *jobs)
	default:
		study, err = experiments.SensitivityStudyContext(ctx, *instructions, *jobs)
	}
	if err != nil {
		if ctx.Err() != nil {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
	if *classifyOnly {
		for _, r := range study {
			mark := " "
			if r.Sensitive {
				mark = "*"
			}
			fmt.Printf("%s %-14s adequate %7.0f kB\n", mark, r.Name, float64(r.Adequate)/1024)
		}
		return
	}
	fmt.Print(report.Figure11(study))
}
