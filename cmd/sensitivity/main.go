// Command sensitivity runs the Figure 11 LLC-sensitivity study: every
// SPEC17-like benchmark simulated with each of the 9 supported partition
// sizes, reporting IPC normalized to the 8MB maximum and the resulting
// adequate LLC size and sensitivity classification.
//
// Each benchmark is one multi-lane engine pass — the op stream and the
// private L1 are simulated once and all 9 partition sizes ride on that
// shared front-end — and the 36 passes fan out onto the experiment engine's
// worker pool; -jobs bounds the pool (0 = GOMAXPROCS, 1 = sequential).
// Results are identical for every -jobs value. SIGINT cancels the study:
// in-flight passes stop at their next front-end chunk.
//
// Usage:
//
// A full-fidelity study can journal its progress: -checkpoint records each
// completed benchmark pass to a crash-safe JSONL file, and a restarted
// study with the same flags skips the journaled passes and reproduces the
// identical output (see docs/ROBUSTNESS.md).
//
// Usage:
//
//	sensitivity                       # all 36 benchmarks, all cores
//	sensitivity -jobs 1               # sequential (legacy) execution
//	sensitivity -bench mcf_0          # one benchmark
//	sensitivity -instructions 3000000 # higher fidelity
//	sensitivity -classify-only        # adequate sizes only
//	sensitivity -checkpoint study.ckpt # journal passes; resume on restart
//	sensitivity -checkpoint study.ckpt -shards 8 # N worker processes
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"untangle/internal/checkpoint"
	"untangle/internal/experiments"
	"untangle/internal/obs"
	"untangle/internal/report"
	"untangle/internal/telemetry"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

func main() {
	// Worker mode short-circuits everything (see shard.go): the coordinator
	// re-execs this binary with -shard-worker as the first argument.
	if len(os.Args) > 1 && os.Args[1] == "-shard-worker" {
		os.Exit(workerMain(os.Args[2:]))
	}
	log.SetFlags(0)
	log.SetPrefix("sensitivity: ")
	var (
		bench        = flag.String("bench", "", "run a single benchmark (default: all 36)")
		instructions = flag.Uint64("instructions", 1_500_000, "measured instructions per run (an equal warmup precedes)")
		jobs         = flag.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		shards       = flag.Int("shards", 0, "split the study across N worker processes (requires -checkpoint; 0/1 = in-process)")
		classifyOnly = flag.Bool("classify-only", false, "print adequate sizes only instead of the full curve")
		ckpt         = flag.String("checkpoint", "", "journal completed benchmark passes to this file and resume from it on restart")
		feCache      = flag.String("fe-cache", "", "persist/replay front-end event streams in this directory")
		feRebuild    = flag.Bool("fe-cache-rebuild", false, "regenerate corrupt or key-mismatched -fe-cache entries instead of failing")
		httpAddr     = flag.String("http", "", "serve /metrics, /progress, /healthz and pprof on this address (e.g. :8080)")
		quiet        = flag.Bool("quiet", false, "suppress the live progress line on stderr")
	)
	flag.Parse()
	if *jobs < 0 {
		log.Fatalf("-jobs must be >= 0 (0 = all cores), got %d", *jobs)
	}
	if *feRebuild && *feCache == "" {
		log.Fatal("-fe-cache-rebuild requires -fe-cache")
	}
	if *shards < 0 {
		log.Fatalf("-shards must be >= 0, got %d", *shards)
	}
	if *shards > 1 && *ckpt == "" {
		log.Fatal("-shards requires -checkpoint (the per-shard journals derive from it)")
	}
	if *shards > 1 && *bench != "" {
		log.Fatal("-shards runs the full study; it cannot be combined with -bench")
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var journal *checkpoint.Journal
	if *ckpt != "" {
		if *bench != "" {
			log.Fatal("-checkpoint journals the full study; it cannot be combined with -bench")
		}
		var err error
		journal, err = checkpoint.Open(*ckpt, checkpoint.Fingerprint{
			Instructions: *instructions,
			Units:        "sensitivity",
			ParamsTag:    experiments.ParamsFingerprint(),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		if n := journal.Resumed(); n > 0 {
			log.Printf("resuming from %s: %d benchmark passes already complete", *ckpt, n)
		}
	}

	// Front-end trace cache: warm entries replay the post-L1 event stream
	// instead of re-running the generator and L1 (bitwise-identical output;
	// see EXPERIMENTS.md "Front-end trace cache").
	var feStore *tracecache.Store
	if *feCache != "" {
		st, err := tracecache.NewStore(*feCache, *feRebuild)
		if err != nil {
			log.Fatal(err)
		}
		feStore = st
		experiments.SetFrontEndCache(feStore)
		defer experiments.SetFrontEndCache(nil)
		defer func() {
			c := feStore.Counters()
			log.Printf("fe-cache: %d hits, %d misses, %d rebuilds, %d outcome hits, %d outcome misses, %d bytes read, %d bytes written",
				c.Hits, c.Misses, c.Rebuilds, c.OutcomeHits, c.OutcomeMisses, c.BytesRead, c.BytesWritten)
		}()
	}

	// Operational observability: progress/ETA and metrics for the full
	// study. Wall-clock only — the printed figure is unchanged by any of it.
	if *bench == "" && (*httpAddr != "" || journal != nil || (!*quiet && obs.IsTTY(os.Stderr))) {
		progress := obs.NewProgress()
		var hb *obs.Heartbeat
		if journal != nil {
			var err error
			if hb, err = obs.OpenHeartbeat(obs.HeartbeatPath(journal)); err != nil {
				log.Printf("heartbeat: %v (continuing without)", err)
			} else {
				defer hb.Close()
				progress.SetPrior(hb.Prior())
			}
		}
		reg := telemetry.NewRegistry()
		feStore.RegisterMetrics(reg) // nil-safe: no-op without -fe-cache
		campaign := obs.NewCampaign("sensitivity", nil, progress, reg)
		campaign.Phase("sensitivity", len(workload.SPECBenchmarks))
		experiments.SetUnitObserver(campaign.Unit)
		defer func() {
			experiments.SetUnitObserver(nil)
			campaign.End(nil)
		}()
		if *httpAddr != "" {
			srv, err := obs.StartServer(*httpAddr, progress,
				obs.NamedRegistry{Namespace: "untangle", Registry: reg})
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Shutdown()
			log.Printf("observability: http://%s/{metrics,progress,healthz,debug/pprof}", srv.Addr())
		}
		var line io.Writer
		if !*quiet && obs.IsTTY(os.Stderr) {
			line = os.Stderr
		}
		if r := obs.StartReporter(progress, hb, line, time.Second); r != nil {
			defer r.Stop()
		}
	}

	var study []experiments.SensitivityResult
	var err error
	switch {
	case *bench != "" && *classifyOnly:
		var r experiments.SensitivityResult
		r, err = experiments.Classify(*bench, *instructions)
		study = []experiments.SensitivityResult{r}
	case *bench != "":
		var r experiments.SensitivityResult
		r, err = experiments.Sensitivity(*bench, *instructions)
		study = []experiments.SensitivityResult{r}
	case *shards > 1:
		study, err = runShardedStudy(ctx, *shards, *instructions, journal, *feCache, *feRebuild)
	default:
		study, err = experiments.SensitivityStudyCheckpointed(ctx, *instructions, *jobs, journal)
	}
	if err != nil {
		if ctx.Err() != nil {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
	if *classifyOnly {
		for _, r := range study {
			mark := " "
			if r.Sensitive {
				mark = "*"
			}
			fmt.Printf("%s %-14s adequate %7.0f kB\n", mark, r.Name, float64(r.Adequate)/1024)
		}
		return
	}
	fmt.Print(report.Figure11(study))
}
