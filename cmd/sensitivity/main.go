// Command sensitivity runs the Figure 11 LLC-sensitivity study: every
// SPEC17-like benchmark simulated with each of the 9 supported partition
// sizes, reporting IPC normalized to the 8MB maximum and the resulting
// adequate LLC size and sensitivity classification.
//
// Usage:
//
//	sensitivity                       # all 36 benchmarks
//	sensitivity -bench mcf_0          # one benchmark
//	sensitivity -instructions 3000000 # higher fidelity
package main

import (
	"flag"
	"fmt"
	"log"

	"untangle/internal/experiments"
	"untangle/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sensitivity: ")
	var (
		bench        = flag.String("bench", "", "run a single benchmark (default: all 36)")
		instructions = flag.Uint64("instructions", 1_500_000, "measured instructions per run (an equal warmup precedes)")
	)
	flag.Parse()

	var study []experiments.SensitivityResult
	if *bench != "" {
		r, err := experiments.Sensitivity(*bench, *instructions)
		if err != nil {
			log.Fatal(err)
		}
		study = []experiments.SensitivityResult{r}
	} else {
		var err error
		study, err = experiments.SensitivityStudy(*instructions)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(report.Figure11(study))
}
