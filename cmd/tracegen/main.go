// Command tracegen records synthetic benchmark instruction streams into the
// repository's compact binary trace format, and inspects existing trace
// files. Recorded traces can be replayed through the simulator in place of
// the generators (isa.NewTraceReader is an isa.Stream), which is how users
// plug real program traces into the framework.
//
// It also pre-populates the front-end trace cache (internal/tracecache):
// -fe-cache warms the named benchmarks (or all 36) at the given instruction
// budget for the sensitivity study, and -fe-cache with -mixes warms the
// fused mix engine's per-domain streams (workload + private L1, including
// the pressure-variant tails) for the named mixes at the given -scale — so
// a later `experiments -fe-cache` campaign replays every pass, Figure 11
// and Figures 10-17/Table 6 alike. -info understands both formats — an isa
// trace gets the op statistics and MRC curve, a cache entry gets its record
// counts and embedded key (mix-keyed rich entries additionally report the
// measured/pressure split).
//
// Usage:
//
//	tracegen -bench mcf_0 -instructions 1000000 -out mcf.trace
//	tracegen -info mcf.trace
//	tracegen -fe-cache dir -instructions 1500000            # warm all 36
//	tracegen -fe-cache dir -bench mcf_0,xz_1 -instructions 1500000
//	tracegen -fe-cache dir -mixes all -scale 0.01           # warm all 16 mixes
//	tracegen -fe-cache dir -mixes 1,7 -scale 0.01
//	tracegen -info dir/mcf_0-1500000.fetrace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"untangle/internal/experiments"
	"untangle/internal/fsutil"
	"untangle/internal/isa"
	"untangle/internal/monitor"
	"untangle/internal/mrc"
	"untangle/internal/tracecache"
	"untangle/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		bench        = flag.String("bench", "", "benchmark to record (SPEC or crypto name); for -fe-cache, a comma-separated list (default: all 36)")
		instructions = flag.Uint64("instructions", 1_000_000, "instructions to record")
		out          = flag.String("out", "", "output trace file")
		info         = flag.String("info", "", "print statistics of an existing trace or cache file")
		secret       = flag.Uint64("secret", 0, "secret salt for crypto benchmarks")
		feCache      = flag.String("fe-cache", "", "pre-populate this front-end trace cache directory instead of recording")
		feRebuild    = flag.Bool("fe-cache-rebuild", false, "regenerate corrupt or key-mismatched -fe-cache entries instead of failing")
		jobs         = flag.Int("jobs", 0, "worker pool size for -fe-cache warming (0 = GOMAXPROCS)")
		mixList      = flag.String("mixes", "", "with -fe-cache: warm the fused mix engine's domain streams for these mix ids (comma-separated, or \"all\")")
		mixScale     = flag.Float64("scale", 0.01, "scale factor for -mixes warming (must match the campaign's -scale)")
	)
	flag.Parse()

	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			log.Fatal(err)
		}
	case *feCache != "":
		if *out != "" {
			log.Fatal("-fe-cache warms a cache directory; it cannot be combined with -out")
		}
		if *mixList != "" {
			if *bench != "" {
				log.Fatal("-mixes warms whole mixes; it cannot be combined with -bench")
			}
			if err := warmMixes(*feCache, *feRebuild, *mixList, *mixScale, *secret, *jobs); err != nil {
				log.Fatal(err)
			}
			break
		}
		if err := warm(*feCache, *feRebuild, *bench, *instructions, *jobs); err != nil {
			log.Fatal(err)
		}
	case *bench != "" && *out != "":
		if err := record(*bench, *instructions, *out, *secret); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// warm pre-populates the front-end trace cache for the comma-separated
// benchmark list (empty = every SPEC benchmark) at the given budget.
// Existing intact entries are replayed (verified), not regenerated.
func warm(dir string, rebuild bool, benchList string, instructions uint64, jobs int) error {
	st, err := tracecache.NewStore(dir, rebuild)
	if err != nil {
		return err
	}
	var names []string
	if benchList != "" {
		for _, name := range strings.Split(benchList, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	}
	generated, err := experiments.WarmFrontEndCache(context.Background(), st, names, instructions, jobs)
	if err != nil {
		return err
	}
	c := st.Counters()
	log.Printf("warmed %s: %d streams generated, %d already present, %d bytes written",
		dir, generated, c.Hits, c.BytesWritten)
	return nil
}

// warmMixes pre-populates the front-end trace cache with the fused mix
// engine's per-domain streams ("all" or a comma-separated id list). Each
// mix runs once through the fused engine, so the persisted pressure tails
// are sized to real lane consumption; streams shared between mixes are
// generated once and replayed by the rest.
func warmMixes(dir string, rebuild bool, mixList string, scale float64, secret uint64, jobs int) error {
	st, err := tracecache.NewStore(dir, rebuild)
	if err != nil {
		return err
	}
	var ids []int
	if mixList != "all" {
		for _, part := range strings.Split(mixList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad mix id %q (want numbers or \"all\")", part)
			}
			ids = append(ids, id)
		}
	}
	generated, err := experiments.WarmMixFrontEnds(context.Background(), st, ids, scale, secret, jobs)
	if err != nil {
		return err
	}
	c := st.Counters()
	log.Printf("warmed %s: %d mix streams generated, %d replayed, %d bytes written",
		dir, generated, c.Hits, c.BytesWritten)
	return nil
}

func record(bench string, instructions uint64, out string, secret uint64) error {
	params, err := workload.SPECByName(bench)
	if err != nil {
		params, err = workload.CryptoWithSecret(bench, secret)
		if err != nil {
			return fmt.Errorf("unknown benchmark %q", bench)
		}
	}
	gen, err := workload.NewGenerator(params)
	if err != nil {
		return err
	}
	// Atomic output: the trace streams into a temp file and only a
	// complete recording is renamed to the destination, so a crash
	// mid-record never leaves a torn trace where a good one stood.
	f, err := fsutil.CreateAtomic(out)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := &countingWriter{w: f}
	w, err := isa.NewTraceWriter(cw)
	if err != nil {
		return err
	}
	stream := isa.NewLimited(gen, instructions)
	n, err := w.WriteStream(stream, 0)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Commit(); err != nil {
		return err
	}
	log.Printf("recorded %d ops (%d instructions requested) to %s (%d bytes, %.2f bytes/op)",
		n, instructions, out, cw.n, float64(cw.n)/float64(n))
	return nil
}

// countingWriter tracks bytes written, replacing the Stat call the
// pre-atomic writer used for the size log line.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func printInfo(path string) error {
	if isCache, err := tracecache.IsCacheFile(path); err != nil {
		return err
	} else if isCache {
		return printCacheInfo(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := isa.NewTraceReader(f)
	if err != nil {
		return err
	}
	var ops, instr, mem, writes, secretOps uint64
	lines := map[uint64]struct{}{}
	buf := make([]isa.Op, 4096)
	for {
		n := r.Fill(buf)
		if n == 0 {
			break
		}
		for _, op := range buf[:n] {
			ops++
			instr += op.Instructions()
			if op.IsMem() {
				mem++
				lines[op.Addr/64] = struct{}{}
			}
			if op.IsWrite() {
				writes++
			}
			if op.SecretUse() {
				secretOps++
			}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%s:\n", path)
	fmt.Printf("  ops          %d\n", ops)
	fmt.Printf("  instructions %d\n", instr)
	fmt.Printf("  memory ops   %d (%.1f%% of instructions)\n", mem, 100*float64(mem)/float64(instr))
	fmt.Printf("  stores       %d\n", writes)
	fmt.Printf("  secret ops   %d\n", secretOps)
	fmt.Printf("  footprint    %.2f MB (%d distinct lines)\n", float64(len(lines))*64/(1<<20), len(lines))

	// The LLC demand curve via exact stack-distance analysis: the hit rate
	// a fully-associative LRU cache of each supported size would achieve on
	// the trace's public accesses.
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	r2, err := isa.NewTraceReader(f)
	if err != nil {
		return err
	}
	prof, err := mrc.NewProfile((16 << 20) / 64)
	if err != nil {
		return err
	}
	if n := prof.ObserveStream(r2, 0); n > 0 {
		fmt.Printf("  LRU hit-rate curve (public accesses):\n")
		sizes := monitor.DefaultSizes()
		for i, hr := range prof.Curve(sizes) {
			fmt.Printf("    %7.2f MB  %5.1f%%\n", float64(sizes[i])/(1<<20), hr*100)
		}
	}
	return nil
}

// printCacheInfo renders a front-end cache entry: the fully decoded (and
// therefore CRC-verified) record counts plus the embedded key the engine
// matches against.
func printCacheInfo(path string) error {
	inf, err := tracecache.ReadInfo(path)
	if err != nil {
		return err
	}
	encoding := "classic"
	if inf.Rich {
		encoding = "rich"
	}
	fmt.Printf("%s: front-end trace cache entry (format v%d, %s)\n", path, inf.Version, encoding)
	fmt.Printf("  key          %s\n", inf.Key)
	fmt.Printf("  bytes        %d\n", inf.Bytes)
	fmt.Printf("  events       %d\n", inf.Events)
	if inf.ByKind[tracecache.KindMeasuredEnd] > 0 {
		fmt.Printf("  measured     %d events (+%d pressure-tail)\n",
			inf.Measured, inf.Events-inf.Measured-1)
	}
	fmt.Printf("  instructions %d\n", inf.Instructions)
	fmt.Printf("  memory ops   %d (%.1f%% of instructions; %d L1 hits, %d L1 misses)\n",
		inf.MemOps(), 100*float64(inf.MemOps())/float64(inf.Instructions),
		inf.ByKind[tracecache.KindL1Hit], inf.ByKind[tracecache.KindL1Miss])
	fmt.Printf("  bytes/event  %.2f\n", float64(inf.Bytes)/float64(inf.Events))
	return nil
}
