// Command untangle-sim runs one of the paper's 16 workload mixes under the
// four Table 4 partitioning schemes and prints a Figure-10-style group:
// partition-size distributions, leakage per assessment, and IPC normalized
// to Static.
//
// Usage:
//
//	untangle-sim -mix 1 -scale 0.01
//	untangle-sim -mix 4 -scale 0.01 -worst-case   # Section 9 active-attacker accounting
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"untangle/internal/experiments"
	"untangle/internal/partition"
	"untangle/internal/report"
	"untangle/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("untangle-sim: ")
	var (
		mixID     = flag.Int("mix", 1, "mix number (1-16)")
		scale     = flag.Float64("scale", 0.01, "scale factor (1.0 = paper's full 550M-instruction workloads)")
		worstCase = flag.Bool("worst-case", false, "disable the Maintain optimization (Section 9 active-attacker accounting)")
		noAnnot   = flag.Bool("no-annotations", false, "ablation: ignore secret annotations (reintroduces action leakage)")
		budget    = flag.Float64("budget", 0, "per-domain leakage budget in bits (0 = unlimited)")
		traceOut  = flag.String("trace-out", "", "write per-scheme JSON traces to this file prefix (<prefix>-<scheme>.json)")
	)
	flag.Parse()

	mix, err := workload.MixByID(*mixID)
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiments.RunMix(mix, experiments.Options{
		Scale:               *scale,
		WorstCaseAccounting: *worstCase,
		DisableAnnotations:  *noAnnot,
		Budget:              *budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := report.MixGroup(res, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(os.Stdout, out)
	if mf, err := res.MaintainFraction(partition.Untangle); err == nil {
		fmt.Fprintf(os.Stdout, "\nUntangle Maintain fraction: %.0f%%\n", mf*100)
	}
	if *traceOut != "" {
		samplePeriod := time.Duration(float64(100*time.Microsecond) * *scale)
		for kind, r := range res.PerScheme {
			data, err := report.MarshalJSON(r, samplePeriod)
			if err != nil {
				log.Fatal(err)
			}
			path := fmt.Sprintf("%s-%s.json", *traceOut, kind)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}
}
