// Command untangle-sim runs one of the paper's 16 workload mixes under the
// four Table 4 partitioning schemes and prints a Figure-10-style group:
// partition-size distributions, leakage per assessment, and IPC normalized
// to Static.
//
// Usage:
//
//	untangle-sim -mix 1 -scale 0.01
//	untangle-sim -mix 4 -scale 0.01 -worst-case   # Section 9 active-attacker accounting
//	untangle-sim -mix 1 -scale 0.01 -telemetry out.jsonl   # structured event trace
//	untangle-sim -mix 1 -scale 0.01 -cpuprofile cpu.pprof  # profile the simulator itself
//
// The -telemetry trace is deterministic: two identical invocations produce
// byte-identical files (events are stamped with simulated time and the
// per-scheme streams are serialized in a fixed order). See
// docs/TELEMETRY.md for the event schema.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"untangle/internal/experiments"
	"untangle/internal/fsutil"
	"untangle/internal/obs"
	"untangle/internal/partition"
	"untangle/internal/report"
	"untangle/internal/telemetry"
	"untangle/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("untangle-sim: ")
	var (
		mixID      = flag.Int("mix", 1, "mix number (1-16)")
		scale      = flag.Float64("scale", 0.01, "scale factor (1.0 = paper's full 550M-instruction workloads)")
		worstCase  = flag.Bool("worst-case", false, "disable the Maintain optimization (Section 9 active-attacker accounting)")
		noAnnot    = flag.Bool("no-annotations", false, "ablation: ignore secret annotations (reintroduces action leakage)")
		budget     = flag.Float64("budget", 0, "per-domain leakage budget in bits (0 = unlimited)")
		traceOut   = flag.String("trace-out", "", "write per-scheme JSON traces to this file prefix (<prefix>-<scheme>.json)")
		telemOut   = flag.String("telemetry", "", "write a JSONL telemetry event trace of all schemes to this file")
		metricsOut = flag.String("metrics-out", "", "write per-scheme metrics snapshots to this file prefix (<prefix>-<scheme>.json)")
		httpAddr   = flag.String("http", "", "serve /metrics (per-scheme + pool), /healthz and pprof on this address")
	)
	profile := telemetry.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	if profile.Enabled() {
		stop, err := profile.Start()
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Printf("profiling: %v", err)
			}
		}()
	}

	mix, err := workload.MixByID(*mixID)
	if err != nil {
		log.Fatal(err)
	}
	opts := experiments.Options{
		Scale:               *scale,
		WorstCaseAccounting: *worstCase,
		DisableAnnotations:  *noAnnot,
		Budget:              *budget,
	}

	// Telemetry: the four schemes simulate concurrently, so each gets its
	// own buffer sink and registry; after the run the buffers serialize in
	// the fixed scheme order below, keeping the trace file byte-identical
	// across repetitions.
	kinds := []partition.Kind{partition.Static, partition.TimeBased, partition.Untangle, partition.Shared}
	// -http needs the per-scheme registries populated, so it forces
	// instrumentation on even when no trace or metrics file was asked for.
	instrumented := *telemOut != "" || *metricsOut != "" || *traceOut != "" || *httpAddr != ""
	sinks := map[partition.Kind]*telemetry.Buffer{}
	regs := map[partition.Kind]*telemetry.Registry{}
	if instrumented {
		for _, kind := range kinds {
			sinks[kind] = telemetry.NewBuffer()
			regs[kind] = telemetry.NewRegistry()
		}
		opts.TracerFor = func(k partition.Kind) *telemetry.Tracer {
			return telemetry.New(sinks[k], nil, k.String())
		}
		opts.MetricsFor = func(k partition.Kind) *telemetry.Registry { return regs[k] }
	}

	// Observability server: a scrape sees both layers — each scheme's
	// simulation registry under its own namespace, plus the process-level
	// pool gauges. Wall-clock only; the printed group is unaffected.
	if *httpAddr != "" {
		obsReg := telemetry.NewRegistry()
		campaign := obs.NewCampaign("untangle-sim", nil, obs.NewProgress(), obsReg)
		defer campaign.End(nil)
		named := []obs.NamedRegistry{{Namespace: "untangle", Registry: obsReg}}
		for _, kind := range kinds {
			named = append(named, obs.NamedRegistry{
				Namespace: "untangle_" + kind.String(),
				Registry:  regs[kind],
			})
		}
		srv, err := obs.StartServer(*httpAddr, campaign.Progress, named...)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Shutdown()
		log.Printf("observability: http://%s/{metrics,healthz,debug/pprof}", srv.Addr())
	}

	// Open the trace file before the (potentially long) run so a bad path
	// fails in milliseconds, not after the simulation. The write is atomic:
	// the trace appears at *telemOut only once complete.
	var telemFile *fsutil.AtomicFile
	if *telemOut != "" {
		telemFile, err = fsutil.CreateAtomic(*telemOut)
		if err != nil {
			log.Fatal(err)
		}
		defer telemFile.Close()
	}

	res, err := experiments.RunMix(mix, opts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := report.MixGroup(res, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(os.Stdout, out)
	if mf, err := res.MaintainFraction(partition.Untangle); err == nil {
		fmt.Fprintf(os.Stdout, "\nUntangle Maintain fraction: %.0f%%\n", mf*100)
	}

	if telemFile != nil {
		for _, kind := range kinds {
			if err := sinks[kind].WriteJSONL(telemFile); err != nil {
				log.Fatal(err)
			}
		}
		if err := telemFile.Commit(); err != nil {
			log.Fatal(err)
		}
		var n int
		for _, kind := range kinds {
			n += sinks[kind].Len()
		}
		log.Printf("wrote %s (%d events)", *telemOut, n)
	}
	if *metricsOut != "" {
		for _, kind := range kinds {
			data, err := regs[kind].Snapshot().MarshalJSONIndent()
			if err != nil {
				log.Fatal(err)
			}
			path := fmt.Sprintf("%s-%s.json", *metricsOut, kind)
			if err := fsutil.WriteFileAtomic(path, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}
	if *traceOut != "" {
		samplePeriod := time.Duration(float64(100*time.Microsecond) * *scale)
		for kind, r := range res.PerScheme {
			var snap *telemetry.Snapshot
			if reg := regs[kind]; reg != nil {
				snap = reg.Snapshot()
			}
			data, err := report.MarshalJSONWithTelemetry(r, samplePeriod, snap)
			if err != nil {
				log.Fatal(err)
			}
			path := fmt.Sprintf("%s-%s.json", *traceOut, kind)
			if err := fsutil.WriteFileAtomic(path, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}
}
