// Command rmax computes the covert-channel rate table of Appendix A /
// Section 7: for each count of consecutive Maintain actions, the verified
// maximum data rate R'max and the per-resize information charge, under the
// configured cooldown Tc and random-delay width.
//
// Usage:
//
//	rmax                                  # paper defaults: Tc = 1ms, δ ~ U[0,1ms)
//	rmax -cooldown 2ms -delay 500us       # explore the design space
//	rmax -maintains 32 -unit 10us         # bigger table, finer resolution
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"untangle/internal/covert"
	"untangle/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rmax: ")
	var (
		cooldown  = flag.Duration("cooldown", time.Millisecond, "cooldown Tc between assessments (Mechanism 1)")
		delay     = flag.Duration("delay", time.Millisecond, "uniform random action delay width (Mechanism 2)")
		unit      = flag.Duration("unit", 25*time.Microsecond, "attacker time resolution")
		maintains = flag.Int("maintains", 16, "table capacity: max consecutive Maintains with a dedicated entry")
		showDist  = flag.Bool("distribution", false, "also print the rate-optimal input distribution for m=0")
	)
	flag.Parse()

	cfg := covert.DefaultTableConfig()
	cfg.Cooldown = *cooldown
	cfg.DelayWidth = *delay
	cfg.Unit = *unit
	cfg.MaxMaintains = *maintains

	tbl, err := covert.NewRateTable(cfg)
	if err != nil {
		log.Fatal(err)
	}
	entries := make([]report.RateTableEntry, tbl.Len())
	for m := 0; m < tbl.Len(); m++ {
		e := tbl.Entry(m)
		if !e.Verified {
			log.Printf("warning: entry %d bound not verified within budget", m)
		}
		entries[m] = report.RateTableEntry{
			Maintains:           e.Maintains,
			RatePerSecond:       e.RatePerSecond,
			BitsPerTransmission: e.BitsPerTransmission,
		}
	}
	fmt.Printf("Tc = %v, delay ~ U[0, %v), resolution %v\n", *cooldown, *delay, *unit)
	fmt.Print(report.RateTable(entries))

	if *showDist {
		// Rebuild the m=0 channel and print the optimal sender strategy:
		// which durations carry probability mass, and how much.
		coolUnits := int((*cooldown + *unit - 1) / *unit)
		noiseUnits := int((*delay + *unit - 1) / *unit)
		if noiseUnits < 1 {
			noiseUnits = 1
		}
		spread := 16 * noiseUnits
		step := spread / 128
		if step < 1 {
			step = 1
		}
		var durations []int
		for d := coolUnits; d <= coolUnits+spread; d += step {
			durations = append(durations, d)
		}
		ch, err := covert.NewChannel(durations, covert.UniformNoise(noiseUnits))
		if err != nil {
			log.Fatal(err)
		}
		res := ch.MaxRate(covert.DefaultSolverConfig())
		fmt.Printf("\nRate-optimal input distribution (mass >= 1%%):\n")
		for i, p := range res.Input {
			if p >= 0.01 {
				fmt.Printf("  d = %8v  p = %5.1f%%\n",
					time.Duration(durations[i])*(*unit), p*100)
			}
		}
		fmt.Printf("  Tavg = %v, %0.2f bits per transmission\n",
			time.Duration(res.AvgTime*float64(*unit)), res.BitsPerTransmission)
	}
}
