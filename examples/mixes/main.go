// Mixes: drive a full paper workload mix through the public experiment API.
//
// Runs Mix 1 (two LLC-sensitive workloads) under all four Table 4 schemes at
// a small scale and prints the Figure-10-style group plus the Table 6 row —
// the same code path the benchmark harness and cmd/experiments use.
//
//	go run ./examples/mixes           # Mix 1
//	go run ./examples/mixes 4         # any mix id
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"untangle/internal/experiments"
	"untangle/internal/report"
	"untangle/internal/workload"
)

func main() {
	log.SetFlags(0)
	mixID := 1
	if len(os.Args) > 1 {
		id, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad mix id %q", os.Args[1])
		}
		mixID = id
	}
	mix, err := workload.MixByID(mixID)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running mix %d under Static/Time/Untangle/Shared (scale 0.005)...", mixID)
	res, err := experiments.RunMix(mix, experiments.Options{Scale: 0.005})
	if err != nil {
		log.Fatal(err)
	}
	group, err := report.MixGroup(res, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(group)
	row, err := res.Table6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report.Table6([]experiments.Table6Row{row}))
}
