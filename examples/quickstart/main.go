// Quickstart: the smallest end-to-end tour of the library.
//
// It (1) reproduces the paper's Figure 3 worked example with the formal
// leakage decomposition, (2) computes the covert-channel rate table that
// bounds Untangle's scheduling leakage, and (3) runs a two-domain simulation
// of the last-level cache under the Untangle scheme and reports performance,
// the resizing trace, and the measured leakage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"untangle/internal/core"
	"untangle/internal/covert"
	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

func main() {
	log.SetFlags(0)

	// --- 1. The Figure 3 example: decompose trace leakage. ----------------
	const expand, maintain = 4 << 20, 2 << 20
	traces, err := core.NewTraceSet([]core.WeightedTrace{
		{Trace: core.ResizingTrace{Actions: []int64{expand, maintain}, Times: []int64{100, 200}}, Prob: 0.25},
		{Trace: core.ResizingTrace{Actions: []int64{expand, maintain}, Times: []int64{150, 300}}, Prob: 0.25},
		{Trace: core.ResizingTrace{Actions: []int64{maintain, maintain}, Times: []int64{120, 240}}, Prob: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	total, action, scheduling := traces.Decompose()
	fmt.Printf("Figure 3 example: action %.1f + scheduling %.1f = total %.1f bits\n\n",
		action, scheduling, total)

	// --- 2. The scheduling-leakage bound for the paper's parameters. ------
	tbl, err := covert.Shared(covert.TableConfig{
		Unit: 50 * time.Microsecond, Cooldown: time.Millisecond,
		DelayWidth: time.Millisecond, MaxMaintains: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scheduling-leakage bounds (Tc = 1ms, delay ~ U[0,1ms)):")
	for m := 0; m < tbl.Len(); m++ {
		e := tbl.Entry(m)
		fmt.Printf("  after %d Maintains: Rmax = %6.0f bits/s, %0.2f bits per visible resize\n",
			m, e.RatePerSecond, e.BitsPerTransmission)
	}
	fmt.Println()

	// --- 3. A two-domain Untangle simulation. -----------------------------
	scale := 0.005
	cfg := sim.Scaled(partition.DefaultScheme(partition.Untangle), scale)
	mcf, err := workload.SPECByName("mcf_0")
	if err != nil {
		log.Fatal(err)
	}
	img, err := workload.SPECByName("imagick_0")
	if err != nil {
		log.Fatal(err)
	}
	mkStream := func(p workload.Params, n uint64) isa.Stream {
		g, err := workload.NewGenerator(p)
		if err != nil {
			log.Fatal(err)
		}
		return isa.NewLimited(g, n)
	}
	s, err := sim.New(cfg, []sim.DomainSpec{
		{Name: "mcf_0", Stream: mkStream(mcf, 1_500_000), CPU: mcf.CPUParams()},
		{Name: "imagick_0", Stream: mkStream(img, 1_500_000), CPU: img.CPUParams()},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Two-domain Untangle run (mcf_0 wants 6MB, imagick_0 is happy with 256kB):")
	for _, d := range res.Domains {
		fmt.Printf("  %-10s IPC %.2f, %d assessments (%d visible), leakage %.2f bits (%.2f/assessment)\n",
			d.Name, d.IPC, d.Leakage.Assessments, d.Leakage.Visible,
			d.Leakage.TotalBits, d.Leakage.PerAssessment())
	}
	fmt.Println("\nmcf_0 resizing trace (the attacker sees only the visible rows):")
	for _, a := range res.Domains[0].Trace {
		if a.Visible {
			fmt.Printf("  t=%-12v %4.2gMB -> %4.2gMB  (applied t=%v)\n",
				a.At, float64(a.Prev)/(1<<20), float64(a.Size)/(1<<20), a.ApplyAt)
		}
	}
	fmt.Println("\nNext: examples/mixes runs a full paper mix; cmd/experiments, the whole evaluation.")
}
