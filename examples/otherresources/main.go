// Other resources: Untangle beyond the LLC (Sections 6.3 and 6.4).
//
// The framework generalizes to any resource with (1) a timing-independent
// utilization metric and (2) annotations for secret-dependent usage. This
// example demonstrates:
//
//   - a shared second-level TLB partitioned by entries, with the
//     shadow-TLB metric feeding the same hit-maximizing allocator used for
//     the LLC;
//
//   - SMT functional-unit partitioning driven by the retired-instruction
//     mix (the Section 6.3 recipe for SecSMT-style pipeline resources);
//
//   - the Section 6.4 tiered security lattice, where a low-tier program's
//     resizes toward strictly-higher-tier neighbours are free of charge.
//
//     go run ./examples/otherresources
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"untangle/internal/core"
	"untangle/internal/covert"
	"untangle/internal/partition"
	"untangle/internal/smt"
	"untangle/internal/tlb"
)

func main() {
	log.SetFlags(0)
	tlbDemo()
	smtDemo()
	tieredDemo()
}

func tlbDemo() {
	fmt.Println("=== TLB partitioning (Section 6.3) ===")
	sizes := tlb.DefaultEntrySizes()
	// Two domains: a page-walker (database-like, 400-page hot set) and a
	// compute kernel (24 pages).
	mk := func(pages int, seed int64) *tlb.Monitor {
		m, err := tlb.NewMonitor(tlb.MonitorConfig{Sizes: sizes, Ways: 8, Window: 1 << 14})
		if err != nil {
			log.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 60000; i++ {
			m.Observe(uint64(r.Intn(pages)) * tlb.PageBytes)
		}
		return m
	}
	big, small := mk(400, 1), mk(24, 2)

	// The allocator is resource-agnostic: candidate "sizes" are entry
	// counts, capacity is the 1024-entry shared STLB.
	sizeUnits := make([]int64, len(sizes))
	for i, s := range sizes {
		sizeUnits[i] = int64(s)
	}
	alloc, err := partition.NewAllocator(sizeUnits, 1024)
	if err != nil {
		log.Fatal(err)
	}
	grant := alloc.GlobalAllocate([][]float64{big.Utilities(), small.Utilities()})
	fmt.Printf("  1024-entry shared TLB split: page-walker %d entries, kernel %d entries\n",
		grant[0], grant[1])

	// Resize a live TLB partition along the granted sizes.
	t, err := tlb.New(tlb.Config{Entries: 128, Ways: 8})
	if err != nil {
		log.Fatal(err)
	}
	for p := uint64(0); p < 100; p++ {
		t.Access(p * tlb.PageBytes)
	}
	if err := t.Resize(int(grant[0])); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  live partition resized 128 -> %d entries; %d translations retained\n\n",
		t.Entries(), countPresent(t, 100))
}

func countPresent(t *tlb.TLB, pages uint64) int {
	n := 0
	for p := uint64(0); p < pages; p++ {
		if t.Contains(p * tlb.PageBytes) {
			n++
		}
	}
	return n
}

func smtDemo() {
	fmt.Println("=== SMT functional-unit partitioning (Section 6.3) ===")
	// Thread 0 is FP-heavy, thread 1 is ALU-heavy; monitor their retired
	// mixes over a progress window, then let the action heuristic repartition
	// the issue slots.
	mon0, _ := smt.NewMonitor(4096, 8)
	mon1, _ := smt.NewMonitor(4096, 8)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		if r.Float64() < 0.55 {
			mon0.Retire(smt.FP)
		} else {
			mon0.Retire(smt.UnitKind(-1))
		}
		if r.Float64() < 0.5 {
			mon1.Retire(smt.ALU)
		} else if r.Float64() < 0.2 {
			mon1.Retire(smt.FP)
		} else {
			mon1.Retire(smt.UnitKind(-1))
		}
	}
	usage := [2]smt.Mix{mon0.Fractions(), mon1.Fractions()}
	even := smt.Even()
	next := smt.Decide(even, usage, 0.05)
	before := smt.Throughput(even, usage, 8)
	after := smt.Throughput(next, usage, 8)
	fmt.Printf("  thread0 mix: FP %.2f; thread1 mix: ALU %.2f FP %.2f\n",
		usage[0][smt.FP], usage[1][smt.ALU], usage[1][smt.FP])
	fmt.Printf("  FP slots 8/16 -> %d/16, ALU slots 8/16 -> %d/16 (visible resize: %v)\n",
		next.Shares[0][smt.FP], next.Shares[1][smt.ALU], smt.Visible(even, next))
	fmt.Printf("  IPC: thread0 %.2f -> %.2f, thread1 %.2f -> %.2f\n\n",
		before[0], after[0], before[1], after[1])
}

func tieredDemo() {
	fmt.Println("=== Tiered security lattice (Section 6.4) ===")
	tblCfg := covert.TableConfig{
		Unit: 100 * time.Microsecond, Cooldown: time.Millisecond,
		DelayWidth: time.Millisecond, MaxMaintains: 4,
	}
	tbl, err := covert.Shared(tblCfg)
	if err != nil {
		log.Fatal(err)
	}
	inner, err := core.NewUntangleAccountant(core.AccountantConfig{
		Domains: 2, Table: tbl, OptimizeMaintain: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Domain 0 is low-tier (L), domain 1 high-tier (H): flows L -> H are
	// permitted, so L's visible resizes are free.
	acct, err := core.NewTieredAccountant(inner, []core.Tier{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	at := time.Duration(0)
	for i := 0; i < 5; i++ {
		at += 2 * time.Millisecond
		acct.RecordAssessment(0, true, at) // L resizes
		acct.RecordAssessment(1, true, at) // H resizes
	}
	fmt.Printf("  L (low tier):  %d visible resizes, %d free flows, %.2f bits charged\n",
		5, acct.FreeFlows(0), acct.Domain(0).TotalBits)
	fmt.Printf("  H (high tier): %d visible resizes, %d free flows, %.2f bits charged\n",
		5, acct.FreeFlows(1), acct.Domain(1).TotalBits)
	fmt.Println("  (H is charged because the lower-tier L observes it; L is not.)")
}
