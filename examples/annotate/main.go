// Annotate: the static-analysis toolchain the paper assumes (Sections 2.1,
// 4, 6.5), end to end.
//
// The victim is written in the repository's mini-language — here, the
// AES-like table cipher and Figure 1a — with secret parameters as the only
// markings. The taint analysis derives the Section 5.2 annotations
// (secret-dependent usage, secret-dependent control flow, timing-dependent
// regions); the interpreter emits the annotated instruction stream; and a
// simulation under annotated Untangle shows the action sequence is
// identical across secrets while the Time baseline's differs.
//
//	go run ./examples/annotate
package main

import (
	"fmt"
	"log"

	"untangle/internal/isa"
	"untangle/internal/lang"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

func main() {
	log.SetFlags(0)

	// --- The analysis, on the AES-like cipher. -----------------------------
	prog := lang.AESLikeProgram(512)
	exec, err := lang.NewExec(prog, map[string]int64{"key": 0x5A}, 0)
	if err != nil {
		log.Fatal(err)
	}
	a := exec.Analysis()
	fmt.Println("Taint analysis of the AES-like cipher (secret parameter: key):")
	for _, v := range []string{"pt", "idx", "t"} {
		fmt.Printf("  scalar %-4s -> %s\n", v, taintStr(a.VarTaint[v]))
	}
	for _, arr := range []string{"ttable", "payload"} {
		fmt.Printf("  array  %-8s -> %s\n", arr, taintStr(a.ArrayTaint[arr]))
	}
	var secretOps, totalMem int
	ops := make([]isa.Op, 256)
	for {
		n := exec.Fill(ops)
		if n == 0 {
			break
		}
		for _, op := range ops[:n] {
			if op.IsMem() {
				totalMem++
				if op.SecretUse() {
					secretOps++
				}
			}
		}
	}
	fmt.Printf("  emitted stream: %d/%d memory accesses annotated secret\n\n", secretOps, totalMem)

	// --- The guarantee, on Figure 1a. --------------------------------------
	fmt.Println("Figure 1a written in the language, run under real schemes:")
	for _, cfg := range []struct {
		label     string
		kind      partition.Kind
		annotated bool
	}{
		{"Time baseline       ", partition.TimeBased, false},
		{"Untangle, annotated ", partition.Untangle, true},
	} {
		a0 := runActions(cfg.kind, cfg.annotated, 0)
		a1 := runActions(cfg.kind, cfg.annotated, 1)
		same := len(a0) == len(a1)
		if same {
			for i := range a0 {
				if a0[i] != a1[i] {
					same = false
					break
				}
			}
		}
		verdict := "actions DIFFER with the secret"
		if same {
			verdict = "actions identical across secrets"
		}
		fmt.Printf("  %s %s\n", cfg.label, verdict)
	}
	fmt.Println("\nThe annotations came from the analysis; nothing was hand-marked.")
}

func taintStr(t lang.Taint) string {
	if t {
		return "SECRET"
	}
	return "public"
}

func runActions(kind partition.Kind, annotated bool, secret int64) []int64 {
	scheme := partition.DefaultScheme(kind)
	scheme.Annotated = annotated
	cfg := sim.Scaled(scheme, 0.003)
	cfg.Warmup = 0
	exec, err := lang.NewExec(lang.Figure1aProgram(32768, 40000), map[string]int64{"secret": secret}, 0)
	if err != nil {
		log.Fatal(err)
	}
	p, err := workload.SPECByName("imagick_0")
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(cfg, []sim.DomainSpec{{
		Name:   "victim",
		Stream: isa.NewLimitedPublic(exec, 400_000),
		CPU:    p.CPUParams(),
	}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	var out []int64
	for _, a := range res.Domains[0].Trace {
		if a.Visible {
			out = append(out, a.Size)
		}
	}
	return out
}
