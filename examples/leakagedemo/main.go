// Leakage demo: the three snippets of Figure 1 run against real schemes.
//
// For each snippet the demo runs the victim twice — once per secret value —
// under (a) the Time baseline, (b) Untangle without annotations, and (c)
// Untangle with annotations, and prints whether the resizing ACTION SEQUENCE
// differed between the two secrets. The paper's claims, visible in the
// output:
//
//   - Figures 1a/1b leak through actions under Time and unannotated
//     Untangle, but the action sequences become identical once annotations
//     exclude the secret-dependent demand (Section 5.2).
//
//   - Figure 1c never differs in actions under annotated Untangle — only in
//     WHEN they happen. That residual is the scheduling leakage that the
//     covert-channel model bounds (Section 5.3).
//
//     go run ./examples/leakagedemo
package main

import (
	"fmt"
	"log"
	"time"

	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

const scale = 0.005

func run(scheme partition.SchemeConfig, stream isa.Stream) (sizes []int64, times []time.Duration) {
	cfg := sim.Scaled(scheme, scale)
	cfg.Warmup = 0 // compare complete traces; a time-based warmup window
	// would clip the two runs at secret-dependent points.
	spec, err := workload.SPECByName("imagick_0")
	if err != nil {
		log.Fatal(err)
	}
	// The victim runs alone: the paper's timing-independence statement is
	// about the victim's own instruction stream. (Co-runners change the
	// global monitor state over wall-clock time, which is the environment
	// acting on the victim - Section 6.2's active-attacker discussion, not
	// action leakage.)
	// The budget counts PUBLIC instructions: two executions of the same
	// program differing only in secret-dependent extra work retire the
	// identical public instruction sequence.
	s, err := sim.New(cfg, []sim.DomainSpec{
		{Name: "victim", Stream: isa.NewLimitedPublic(stream, 1_200_000), CPU: spec.CPUParams()},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Domains[0].Trace {
		sizes = append(sizes, a.Size)
		times = append(times, a.ApplyAt)
	}
	return sizes, times
}

func sameActions(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameTimes(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func verdict(streamFor func(secret bool) isa.Stream) {
	timeBaseline := partition.DefaultScheme(partition.TimeBased)
	timeBaseline.Annotated = false // conventional schemes have no annotation support
	schemes := []struct {
		label  string
		scheme partition.SchemeConfig
	}{
		{"Time baseline            ", timeBaseline},
		{"Untangle, no annotations ", unannotated()},
		{"Untangle, annotated      ", partition.DefaultScheme(partition.Untangle)},
	}
	for _, s := range schemes {
		a0, t0 := run(s.scheme, streamFor(false))
		a1, t1 := run(s.scheme, streamFor(true))
		fmt.Printf("  %s actions %-9s timing %s\n", s.label,
			tern(sameActions(a0, a1), "identical", "DIFFER"),
			tern(sameTimes(t0, t1), "identical", "differs"))
	}
}

func unannotated() partition.SchemeConfig {
	c := partition.DefaultScheme(partition.Untangle)
	c.Annotated = false
	return c
}

func tern(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}

func main() {
	log.SetFlags(0)
	annotatedFlag := true

	fmt.Println("Figure 1a: secret-gated 4MB traversal (control-flow leak)")
	verdict(func(secret bool) isa.Stream { return workload.Figure1a(secret, annotatedFlag) })

	fmt.Println("\nFigure 1b: secret-strided traversal (data-flow leak)")
	verdict(func(secret bool) isa.Stream {
		stride := uint64(1)
		if secret {
			stride = 8
		}
		return workload.Figure1b(stride, annotatedFlag)
	})

	fmt.Println("\nFigure 1c: secret-delayed public traversal (timing leak)")
	verdict(func(secret bool) isa.Stream { return workload.Figure1c(secret, annotatedFlag, 400_000) })

	fmt.Println("\nReading: annotations kill the action leakage of 1a/1b under Untangle;")
	fmt.Println("1c's actions are identical even so - only their timing moves, and that")
	fmt.Println("is exactly the scheduling leakage Untangle bounds with the covert channel.")
}
