// Covert channel: the Section 5.3 model, hands-on.
//
// The example (1) reproduces the worked strategy example of Section 5.3.1
// (four symbols at 1-4ms beat eight symbols at 1-8ms: 800 vs 667 bits/s),
// (2) computes the verified R'max bound with Dinkelbach's transform, and (3)
// plays actual sender/receiver transmissions through the random-delay
// channel, showing that every concrete strategy stays below the bound.
//
//	go run ./examples/covertchannel
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"untangle/internal/attacker"
	"untangle/internal/covert"
	"untangle/internal/info"
)

func main() {
	log.SetFlags(0)

	// --- 1. Section 5.3.1 strategy example (noiseless, 1ms resolution). ---
	r1, err := covert.NoiselessRate([]int{1, 2, 3, 4}, info.NewUniform(4))
	if err != nil {
		log.Fatal(err)
	}
	r2, err := covert.NoiselessRate([]int{1, 2, 3, 4, 5, 6, 7, 8}, info.NewUniform(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Strategy 1 (4 symbols, 1-4ms):  %.0f bits/s\n", r1*1000)
	fmt.Printf("Strategy 2 (8 symbols, 1-8ms):  %.0f bits/s\n", r2*1000)
	fmt.Println("More symbols lost: the longer average transmission time dominates.")

	// --- 2. The verified bound for the paper's Untangle parameters. -------
	cfg := covert.TableConfig{
		Unit:         50 * time.Microsecond,
		Cooldown:     time.Millisecond,
		DelayWidth:   time.Millisecond,
		MaxMaintains: 0,
	}
	bound, err := attacker.BoundFor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVerified R'max bound (Tc = 1ms, delay ~ U[0,1ms)): %.0f bits/s\n\n", bound)

	// --- 3. Concrete strategies against the noisy channel. ----------------
	rng := rand.New(rand.NewSource(7))
	strategies := []struct {
		name string
		s    attacker.Sender
	}{
		{"2 symbols, 1ms apart ", attacker.Sender{Durations: []time.Duration{time.Millisecond, 2 * time.Millisecond}}},
		{"2 symbols, 4ms apart ", attacker.Sender{Durations: []time.Duration{time.Millisecond, 5 * time.Millisecond}}},
		{"4 symbols, 1ms grid  ", attacker.Sender{Durations: []time.Duration{1e6, 2e6, 3e6, 4e6}}},
		{"8 symbols, 1ms grid  ", attacker.Sender{Durations: []time.Duration{1e6, 2e6, 3e6, 4e6, 5e6, 6e6, 7e6, 8e6}}},
	}
	fmt.Println("Empirical strategies through the δ ~ U[0,1ms) channel (1000 symbols each):")
	for _, st := range strategies {
		msg := make([]int, 1000)
		for i := range msg {
			msg[i] = rng.Intn(len(st.s.Durations))
		}
		times, err := st.s.Schedule(0, msg)
		if err != nil {
			log.Fatal(err)
		}
		obs := make([]attacker.Observation, len(times))
		for i, at := range times {
			obs[i] = attacker.Observation{At: at + time.Duration(rng.Int63n(int64(time.Millisecond)))}
		}
		decoded := st.s.DecodeDurations(attacker.Durations(obs))
		elapsed := obs[len(obs)-1].At - obs[0].At
		rate := attacker.EmpiricalRate(len(st.s.Durations), msg, decoded, elapsed)
		ser := attacker.SymbolErrorRate(msg, decoded)
		fmt.Printf("  %s symbol errors %5.1f%%  -> %6.0f bits/s (%.0f%% of the bound)\n",
			st.name, ser*100, rate, 100*rate/bound)
	}
	fmt.Println("\nNo strategy beats the bound; wider spacing trades errors for time.")
}
