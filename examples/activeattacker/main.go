// Active attacker: the Section 6.2 / Section 9 scenario.
//
// A victim (mcf_0, which wants a big partition) shares the LLC with an
// active attacker that alternately idles and applies maximum pressure,
// "squeezing" the victim's partition so its assessments become visible
// actions. The example measures the victim's leakage three ways:
//
//  1. a benign co-runner, optimized accounting (the normal case),
//  2. the squeezer, optimized accounting (more visible actions),
//  3. the squeezer, worst-case accounting (the paper's active-attacker
//     number, every assessment charged),
//
// and finally shows the leakage budget doing its job: with a budget set,
// the squeezed victim freezes instead of leaking past the threshold.
//
//	go run ./examples/activeattacker
package main

import (
	"fmt"
	"log"

	"untangle/internal/attacker"
	"untangle/internal/core"
	"untangle/internal/isa"
	"untangle/internal/partition"
	"untangle/internal/sim"
	"untangle/internal/workload"
)

const scale = 0.005

func runVictim(aggressive bool, optimize bool, budget float64) core.DomainLeakage {
	cfg := sim.Scaled(partition.DefaultScheme(partition.Untangle), scale)
	cfg.OptimizeMaintain = optimize
	cfg.Budget = budget

	victimP, err := workload.SPECByName("mcf_0")
	if err != nil {
		log.Fatal(err)
	}
	vg, err := workload.NewGenerator(victimP)
	if err != nil {
		log.Fatal(err)
	}

	specs := []sim.DomainSpec{
		{Name: "victim", Stream: isa.NewLimited(vg, 2_000_000), CPU: victimP.CPUParams()},
	}
	if aggressive {
		// Several pulsing squeezers: each alternately claims and releases
		// capacity, so the allocator keeps yanking the victim's partition.
		for i := 0; i < 5; i++ {
			s, params, err := attacker.PulsingSqueezer(
				attacker.SqueezerParams{Seed: uint64(11 + i), DemandBytes: 8 * workload.MB},
				uint64(120_000+30_000*i))
			if err != nil {
				log.Fatal(err)
			}
			specs = append(specs, sim.DomainSpec{
				Name:   fmt.Sprintf("squeezer-%d", i),
				Stream: isa.NewLimited(s, 2_000_000),
				CPU:    params.CPUParams(),
			})
		}
	} else {
		benignP, err := workload.SPECByName("imagick_0")
		if err != nil {
			log.Fatal(err)
		}
		bg, err := workload.NewGenerator(benignP)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, sim.DomainSpec{
			Name: "co-runner", Stream: isa.NewLimited(bg, 2_000_000), CPU: benignP.CPUParams(),
		})
	}

	s, err := sim.New(cfg, specs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res.Domains[0].Leakage
}

func main() {
	log.SetFlags(0)

	benign := runVictim(false, true, 0)
	squeezed := runVictim(true, true, 0)
	worst := runVictim(true, false, 0)

	fmt.Println("Victim: mcf_0 under Untangle (Tc = 1ms equivalent at scale)")
	fmt.Printf("  benign co-runner:        %3d assessments, %2d visible, %6.2f bits (%.2f/assessment)\n",
		benign.Assessments, benign.Visible, benign.TotalBits, benign.PerAssessment())
	fmt.Printf("  active squeezer:         %3d assessments, %2d visible, %6.2f bits (%.2f/assessment)\n",
		squeezed.Assessments, squeezed.Visible, squeezed.TotalBits, squeezed.PerAssessment())
	fmt.Printf("  squeezer, worst-case:    %3d assessments, %2d visible, %6.2f bits (%.2f/assessment)\n",
		worst.Assessments, worst.Visible, worst.TotalBits, worst.PerAssessment())

	budget := squeezed.TotalBits / 2
	frozen := runVictim(true, true, budget)
	fmt.Printf("\nWith a %.1f-bit budget the squeezed victim freezes: frozen=%v, leaked %.2f bits\n",
		budget, frozen.Frozen, frozen.TotalBits)

	// Section 6.2's replay accounting: how many runs before a 1000-bit
	// threshold freezes the program entirely?
	if squeezed.TotalBits > 0 {
		rep, err := attacker.Replay(squeezed.TotalBits, 1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Replay attack at this rate: %d full runs before a 1000-bit threshold freezes resizing.\n",
			rep.RunsUntilFrozen)
	}
	fmt.Println("\nThe attacker can waste the victim's budget, but never exceed it (Section 6.2).")
}
